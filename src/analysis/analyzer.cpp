#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "analysis/checks.hpp"

namespace psmgen::analysis {

const std::vector<CheckInfo>& checkRegistry() {
  // Report order; ids are stable and never renumbered. New checks
  // append within their family.
  static const std::vector<CheckInfo> registry = {
      {"PSM-ART-001", Severity::Error,
       "artifact unreadable (I/O failure opening or writing the file)"},
      {"PSM-ART-002", Severity::Error,
       "bad magic: the file is not a psmgen model artifact"},
      {"PSM-ART-003", Severity::Error,
       "unsupported artifact format version"},
      {"PSM-ART-004", Severity::Error,
       "artifact truncated mid-field"},
      {"PSM-ART-005", Severity::Error,
       "payload checksum mismatch (corrupted artifact)"},
      {"PSM-ART-006", Severity::Error,
       "a field decoded to a semantically invalid value"},
      {"PSM-ART-007", Severity::Error,
       "stored HMM parameters differ from the ones re-derived on load"},
      {"PSM-ART-008", Severity::Error,
       "trailing bytes after the last artifact section"},
      {"PSM-DOM-001", Severity::Error,
       "proposition signature arity differs from the mined atom set"},
      {"PSM-DOM-002", Severity::Info,
       "interned propositions never referenced by the PSM"},
      {"PSM-INIT-001", Severity::Error,
       "model has no initial state at all"},
      {"PSM-INIT-002", Severity::Warn,
       "initial multiset and per-state initial_count disagree"},
      {"PSM-STATE-001", Severity::Error,
       "state unreachable from every initial state"},
      {"PSM-STATE-002", Severity::Info,
       "sink state (no outgoing transitions)"},
      {"PSM-TRANS-001", Severity::Error,
       "transition-probability row does not sum to 1 (+/- epsilon)"},
      {"PSM-TRANS-002", Severity::Error,
       "transition with multiplicity 0"},
      {"PSM-TRANS-003", Severity::Info,
       "nondeterministic (state, proposition) pair with several targets"},
      {"PSM-TRANS-004", Severity::Warn,
       "duplicate transition not folded into a multiplicity"},
      {"PSM-TRANS-005", Severity::Error,
       "transition without an enabling proposition"},
      {"PSM-TRANS-006", Severity::Error,
       "transition enabling proposition outside the domain"},
      {"PSM-POWER-001", Severity::Error,
       "power stddev negative or non-finite"},
      {"PSM-POWER-002", Severity::Error,
       "power mean non-finite"},
      {"PSM-POWER-003", Severity::Warn,
       "power attribute pooled from fewer than 2 samples"},
      {"PSM-POWER-004", Severity::Warn,
       "power mean outside its recorded interval-mean range"},
      {"PSM-REG-001", Severity::Error,
       "regression refinement with non-finite coefficients"},
      {"PSM-REG-002", Severity::Warn,
       "degenerate regression refinement (flat slope or n < 3)"},
      {"PSM-ASSERT-001", Severity::Error,
       "state without assertion alternatives"},
      {"PSM-ASSERT-002", Severity::Error,
       "malformed pattern (empty sequence or missing operand)"},
      {"PSM-ASSERT-003", Severity::Error,
       "pattern proposition id outside the domain"},
      {"PSM-ASSERT-004", Severity::Warn,
       "broken `;`-sequence continuity between adjacent patterns"},
      {"PSM-ASSERT-005", Severity::Error,
       "alternative multiplicities inconsistent with the alternatives"},
      {"PSM-ASSERT-006", Severity::Warn,
       "duplicate alternative not folded into a multiplicity"},
  };
  return registry;
}

const CheckInfo* findCheck(const std::string& id) {
  for (const CheckInfo& info : checkRegistry()) {
    if (id == info.id) return &info;
  }
  return nullptr;
}

namespace {

bool suppressed(const LintOptions& options, const std::string& id) {
  return std::find(options.suppress.begin(), options.suppress.end(), id) !=
         options.suppress.end();
}

/// Re-tallies `raw` into a fresh report with the suppressed ids dropped.
LintReport applySuppression(LintReport raw, const LintOptions& options) {
  if (options.suppress.empty()) return raw;
  LintReport filtered;
  for (Finding& f : raw.findings) {
    if (!suppressed(options, f.check_id)) filtered.add(std::move(f));
  }
  return filtered;
}

const char* artifactCheckId(serialize::FormatErrorCode code) {
  using serialize::FormatErrorCode;
  switch (code) {
    case FormatErrorCode::Io: return "PSM-ART-001";
    case FormatErrorCode::BadMagic: return "PSM-ART-002";
    case FormatErrorCode::UnsupportedVersion: return "PSM-ART-003";
    case FormatErrorCode::Truncated: return "PSM-ART-004";
    case FormatErrorCode::ChecksumMismatch: return "PSM-ART-005";
    case FormatErrorCode::BadField: return "PSM-ART-006";
    case FormatErrorCode::HmmMismatch: return "PSM-ART-007";
    case FormatErrorCode::TrailingData: return "PSM-ART-008";
  }
  return "PSM-ART-006";
}

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

LintReport lintModel(const core::Psm& psm,
                     const core::PropositionDomain& domain,
                     const LintOptions& options) {
  LintReport report;
  detail::runModelChecks(psm, domain, options, report);
  return applySuppression(std::move(report), options);
}

LintReport lintArtifact(const std::string& path, const LintOptions& options) {
  try {
    const serialize::PsmModel model = serialize::loadPsmModel(path);
    return lintModel(model.psm, model.domain, options);
  } catch (const serialize::FormatError& e) {
    LintReport report;
    Locus locus;
    locus.detail = e.field();
    if (e.offset() != serialize::FormatError::kNoOffset) {
      locus.detail += (locus.detail.empty() ? "" : " ");
      locus.detail += "@" + std::to_string(e.offset());
    }
    report.add(Finding{artifactCheckId(e.code()), Severity::Error,
                       std::move(locus), e.what(),
                       "the artifact cannot be served; re-train or restore "
                       "it from a good copy"});
    return applySuppression(std::move(report), options);
  }
}

std::string renderText(const LintReport& report, const std::string& subject) {
  std::string out = "lint: " + subject + "\n";
  for (const Finding& f : report.findings) {
    out += "  ";
    out += severityName(f.severity);
    out += ' ';
    out += f.check_id;
    std::string where;
    if (f.locus.state != core::kNoState) {
      where += "state " + std::to_string(f.locus.state);
      if (f.locus.alt >= 0) where += " alt " + std::to_string(f.locus.alt);
      if (f.locus.transition >= 0) {
        where += " transition " + std::to_string(f.locus.transition);
      }
    }
    if (!f.locus.detail.empty()) {
      where += (where.empty() ? "" : ", ") + f.locus.detail;
    }
    if (!where.empty()) out += " [" + where + "]";
    out += ": " + f.message + "\n";
    if (!f.hint.empty()) out += "    hint: " + f.hint + "\n";
  }
  out += "summary: " + std::to_string(report.errors) + " error" +
         (report.errors == 1 ? "" : "s") + ", " +
         std::to_string(report.warnings) + " warning" +
         (report.warnings == 1 ? "" : "s") + ", " +
         std::to_string(report.infos) + " info\n";
  return out;
}

std::string renderJson(const LintReport& report, const std::string& subject) {
  std::string out = "{\"schema\": \"psmgen.lint.v1\", \"subject\": ";
  appendJsonString(out, subject);
  out += ", \"summary\": {\"errors\": " + std::to_string(report.errors);
  out += ", \"warnings\": " + std::to_string(report.warnings);
  out += ", \"infos\": " + std::to_string(report.infos);
  out += ", \"findings\": " + std::to_string(report.findings.size());
  out += std::string(", \"clean\": ") + (report.clean() ? "true" : "false");
  out += "}, \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out += ", ";
    out += "{\"id\": ";
    appendJsonString(out, f.check_id);
    out += ", \"severity\": ";
    appendJsonString(out, severityName(f.severity));
    out += ", \"locus\": {";
    bool first = true;
    const auto key = [&](const char* name) {
      if (!first) out += ", ";
      first = false;
      out += '"';
      out += name;
      out += "\": ";
    };
    if (f.locus.state != core::kNoState) {
      key("state");
      out += std::to_string(f.locus.state);
    }
    if (f.locus.alt >= 0) {
      key("alt");
      out += std::to_string(f.locus.alt);
    }
    if (f.locus.transition >= 0) {
      key("transition");
      out += std::to_string(f.locus.transition);
    }
    if (!f.locus.detail.empty()) {
      key("detail");
      appendJsonString(out, f.locus.detail);
    }
    out += "}, \"message\": ";
    appendJsonString(out, f.message);
    out += ", \"hint\": ";
    appendJsonString(out, f.hint);
    out += "}";
  }
  out += "]}\n";
  return out;
}

int gateExitCode(const LintReport& report, const LintOptions& options) {
  if (report.errors > 0) return 1;
  if (options.werror && report.warnings > 0) return 1;
  return 0;
}

}  // namespace psmgen::analysis
