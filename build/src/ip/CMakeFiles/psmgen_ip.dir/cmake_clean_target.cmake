file(REMOVE_RECURSE
  "libpsmgen_ip.a"
)
