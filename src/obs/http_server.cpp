#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/strings.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace psmgen::obs {

namespace {

/// Hard cap on the request head we are willing to buffer; a scrape
/// request is a few hundred bytes, anything larger is abuse.
constexpr std::size_t kMaxRequestBytes = 8192;

bool sendAll(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

namespace {

std::string toLowerAscii(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string trimWhitespace(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

/// Parses the `Name: value` lines between the request line and the
/// blank line into `headers`. Malformed lines (no colon) are skipped —
/// the debug surface has no reason to reject a whole request over one.
void parseHeaderFields(
    const std::string& head, std::size_t begin,
    std::vector<std::pair<std::string, std::string>>& headers) {
  while (begin < head.size()) {
    const std::size_t line_end = head.find("\r\n", begin);
    if (line_end == std::string::npos || line_end == begin) break;
    const std::size_t colon = head.find(':', begin);
    if (colon != std::string::npos && colon < line_end) {
      headers.emplace_back(
          toLowerAscii(trimWhitespace(head.substr(begin, colon - begin))),
          trimWhitespace(head.substr(colon + 1, line_end - colon - 1)));
    }
    begin = line_end + 2;
  }
}

}  // namespace

std::string HttpServer::Request::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return "";
}

std::string HttpServer::Request::queryParam(const std::string& name) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, name) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

bool HttpServer::Request::hasQueryParam(const std::string& name) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    std::size_t eq = query.find('=', pos);
    if (eq == std::string::npos || eq > amp) eq = amp;
    if (query.compare(pos, eq - pos, name) == 0 && eq > pos) return true;
    pos = amp + 1;
  }
  return false;
}

const char* HttpServer::reasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

bool HttpServer::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error("http.socket_failed", {{"errno", common::errnoMessage(errno)}});
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error("http.bind_failed",
          {{"port", port}, {"errno", common::errnoMessage(errno)}});
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd, std::memory_order_release);
  return true;
}

void HttpServer::start() {
  if (listen_fd_.load(std::memory_order_acquire) < 0 || running()) return;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { acceptLoop(); });
  info("http.serving", {{"port", port_}});
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::close(fd);
    return;
  }
  // Claim the fd before touching it so the loop thread can never observe
  // a closed-and-reused descriptor; shutdown() unblocks its accept().
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::acceptLoop() {
  while (running()) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // stop() already reclaimed the socket
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down by stop()
    }
    serveConnection(fd);
    ::close(fd);
  }
}

void HttpServer::serveConnection(int fd) {
  // A slow or dead client must not wedge the accept loop forever. The
  // per-recv socket timeout alone is not enough: a slowloris dripping a
  // byte every few seconds resets it indefinitely, so the whole request
  // head is additionally under one wall-clock deadline.
  const int deadline_ms = request_deadline_ms_.load(std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string head;
  bool timed_out = false;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxRequestBytes) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      timed_out = true;
      break;
    }
    timeval recv_timeout{};
    recv_timeout.tv_sec = remaining.count() / 1000;
    recv_timeout.tv_usec =
        static_cast<suseconds_t>((remaining.count() % 1000) * 1000);
    if (recv_timeout.tv_sec == 0 && recv_timeout.tv_usec == 0) {
      recv_timeout.tv_usec = 1000;
    }
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
                 sizeof(recv_timeout));
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        timed_out = true;  // socket timeout fired; the deadline is spent
        break;
      }
      if (head.empty()) return;  // client connected and went away
      break;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }

  metrics().counter("http.requests").add(1);
  Response response;
  std::string method;
  std::string path;
  if (timed_out && head.find("\r\n\r\n") == std::string::npos) {
    metrics().counter("http.request_timeouts").add(1);
    warn("http.request_timeout",
         {{"bytes_read", head.size()}, {"deadline_ms", deadline_ms}});
    response = {408, "text/plain; charset=utf-8", "request timeout\n"};
    respond(fd, "", response);
    return;
  }
  if (head.size() >= kMaxRequestBytes &&
      head.find("\r\n\r\n") == std::string::npos) {
    metrics().counter("http.oversized_requests").add(1);
    warn("http.oversized_request", {{"bytes_read", head.size()}});
    response = {431, "text/plain; charset=utf-8",
                "request header too large\n"};
    respond(fd, "", response);
    return;
  }
  const std::size_t line_end = head.find("\r\n");
  const std::size_t sp1 = head.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
  if (line_end == std::string::npos || sp1 == std::string::npos ||
      sp2 == std::string::npos || sp2 > line_end) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    method = head.substr(0, sp1);
    Request request;
    request.path = head.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = request.path.find('?');
    if (query != std::string::npos) {
      request.query = request.path.substr(query + 1);
      request.path.resize(query);
    }
    parseHeaderFields(head, line_end + 2, request.headers);
    path = request.path;
    if (method != "GET" && method != "HEAD") {
      response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const auto it = routes_.find(request.path);
      if (it == routes_.end()) {
        response = {404, "text/plain; charset=utf-8", "not found\n"};
      } else {
        try {
          response = it->second(request);
        } catch (const std::exception& e) {
          error("http.handler_failed", {{"path", path}, {"what", e.what()}});
          response = {500, "text/plain; charset=utf-8",
                      "internal server error\n"};
        }
      }
    }
  }
  debug("http.request",
        {{"method", method}, {"path", path}, {"status", response.status}});
  respond(fd, method, response);
}

void HttpServer::respond(int fd, const std::string& method,
                         const Response& response) {
  if (response.status != 200) metrics().counter("http.errors").add(1);
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                    reasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (response.status == 405) out += "Allow: GET, HEAD\r\n";
  out += "Connection: close\r\n\r\n";
  if (method != "HEAD") out += response.body;
  sendAll(fd, out.data(), out.size());
}

}  // namespace psmgen::obs
