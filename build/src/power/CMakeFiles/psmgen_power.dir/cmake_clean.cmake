file(REMOVE_RECURSE
  "CMakeFiles/psmgen_power.dir/activity.cpp.o"
  "CMakeFiles/psmgen_power.dir/activity.cpp.o.d"
  "CMakeFiles/psmgen_power.dir/gate_estimator.cpp.o"
  "CMakeFiles/psmgen_power.dir/gate_estimator.cpp.o.d"
  "libpsmgen_power.a"
  "libpsmgen_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmgen_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
