file(REMOVE_RECURSE
  "CMakeFiles/blackbox_characterization.dir/blackbox_characterization.cpp.o"
  "CMakeFiles/blackbox_characterization.dir/blackbox_characterization.cpp.o.d"
  "blackbox_characterization"
  "blackbox_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
