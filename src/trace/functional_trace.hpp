#pragma once
// FunctionalTrace (paper Def. 2): a finite sequence of evaluations of the
// variable set V (primary inputs and outputs) over simulation instants.
//
// The trace is stored row-major: step(t) is the vector of BitVector values
// of all variables at instant t, in VariableSet order. The trace also
// provides the per-instant input Hamming distance used by the regression
// refinement (Sec. IV).

#include <vector>

#include "common/bitvector.hpp"
#include "trace/variable.hpp"

namespace psmgen::trace {

class FunctionalTrace {
 public:
  FunctionalTrace() = default;
  explicit FunctionalTrace(VariableSet vars) : vars_(std::move(vars)) {}

  const VariableSet& variables() const { return vars_; }

  /// Appends a simulation instant. The row must contain one value per
  /// variable with matching widths; throws std::invalid_argument otherwise.
  void append(std::vector<common::BitVector> row);

  std::size_t length() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const std::vector<common::BitVector>& step(std::size_t t) const {
    return rows_.at(t);
  }
  const common::BitVector& value(std::size_t t, int var) const {
    return rows_.at(t).at(static_cast<std::size_t>(var));
  }

  /// Hamming distance between the concatenated input variables at instants
  /// t and t-1; 0 for t == 0.
  unsigned inputHammingDistance(std::size_t t) const;

  /// Hamming distance over *all* variables (PIs and POs) between instants
  /// t and t-1; 0 for t == 0. The regression refinement observes both
  /// directions, as the methodology is defined over the IP's full
  /// black-box interface.
  unsigned rowHammingDistance(std::size_t t) const;

  /// Keeps instants [start, start+len) only.
  FunctionalTrace subtrace(std::size_t start, std::size_t len) const;

  /// Concatenates another trace with the same variable set.
  void extend(const FunctionalTrace& other);

  bool operator==(const FunctionalTrace&) const = default;

 private:
  VariableSet vars_;
  std::vector<std::vector<common::BitVector>> rows_;
};

}  // namespace psmgen::trace
