// Unit tests for the work-stealing-free thread pool backing the parallel
// characterization pipeline: task completion, exception propagation out of
// parallelFor, inline execution at one thread, nesting, and reuse.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace psmgen {
namespace {

TEST(ThreadPool, ResolveThreadsZeroMeansHardware) {
  EXPECT_GE(common::ThreadPool::resolveThreads(0), 1u);
  EXPECT_EQ(common::ThreadPool::resolveThreads(1), 1u);
  EXPECT_EQ(common::ThreadPool::resolveThreads(7), 7u);
}

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, HonoursGrainAndOddSizes) {
  common::ThreadPool pool(3);
  for (const std::size_t n : {1u, 2u, 7u, 63u, 64u, 65u, 1001u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); },
                     /*grain=*/13);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  common::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;  // unsynchronized: inline => no race
  pool.parallelFor(100, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, NullPoolHelperRunsInlineInOrder) {
  std::vector<std::size_t> order;
  common::parallel_for(nullptr, 10, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  common::ThreadPool pool(4);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptionOfLowestFailingChunk) {
  common::ThreadPool pool(4);
  // Two failing indices; all chunks run to completion and the error of
  // the lowest-indexed chunk (grain == 1 => index 11) is rethrown.
  auto run = [&] {
    pool.parallelFor(500, [&](std::size_t i) {
      if (i == 11 || i == 377) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
  };
  try {
    run();
    FAIL() << "parallelFor did not propagate the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 11");
  }
}

TEST(ThreadPool, ExceptionDoesNotCancelOtherIterations) {
  common::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  EXPECT_THROW(pool.parallelFor(kN,
                                [&](std::size_t i) {
                                  hits[i].fetch_add(1);
                                  if (i % 97 == 0) {
                                    throw std::logic_error("fail");
                                  }
                                }),
               std::logic_error);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ExceptionAtOneThreadPropagatesToo) {
  common::ThreadPool pool(1);
  EXPECT_THROW(pool.parallelFor(10,
                                [&](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  common::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallelFor(64, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 64u);
}

TEST(ThreadPool, ShutdownVsSubmitInterleavings) {
  // Stress the destructor-vs-parallelFor window that the annotated
  // rewrite reshaped (job bookkeeping moved from the Job object onto
  // the pool, guarded by mutex_): construct a pool, race a burst of
  // parallelFor calls against its destruction, and require that every
  // iteration that parallelFor *returned for* actually ran. Under TSan
  // (PSMGEN_SANITIZE=tsan in CI) this also proves the handoff has no
  // data race; the explicit wait loops must publish every write made by
  // the workers before parallelFor returns.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> ran{0};
    std::size_t submitted = 0;
    {
      common::ThreadPool pool(4);
      for (int burst = 0; burst < 8; ++burst) {
        pool.parallelFor(97, [&](std::size_t) {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
        submitted += 97;
      }
      // Destructor runs here, concurrently with workers that may still
      // be parked between generations.
    }
    ASSERT_EQ(ran.load(), submitted) << "round " << round;
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32 * 32);
  for (auto& h : hits) h.store(0);
  pool.parallelFor(32, [&](std::size_t i) {
    // Nested call from (potentially) a worker thread: must degrade to an
    // inline loop instead of deadlocking on the fixed-size pool.
    pool.parallelFor(32, [&](std::size_t j) { hits[i * 32 + j].fetch_add(1); });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace psmgen
