#include "core/psm_simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"

namespace psmgen::core {

PsmSimulator::PsmSimulator(const Psm& psm, const PropositionDomain& domain,
                           SimOptions options)
    : psm_(&psm), domain_(&domain), options_(options), hmm_(psm) {
  if (psm.stateCount() == 0) {
    throw std::invalid_argument("PsmSimulator: empty PSM");
  }
  // Default fallback: the most probable initial state, or state 0.
  double best = -1.0;
  for (const StateId s : psm.initialStates()) {
    if (hmm_.pi(s) > best) {
      best = hmm_.pi(s);
      default_state_ = s;
    }
  }
  if (default_state_ == kNoState) default_state_ = 0;
  for (const auto& v : domain.variables().all()) {
    is_input_.push_back(v.kind == trace::VarKind::Input ? 1 : 0);
  }
  for (const auto& t : psm.transitions()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.from)) << 32) |
        static_cast<std::uint32_t>(t.enabling);
    auto& targets = adjacency_[key];
    if (std::find(targets.begin(), targets.end(), t.to) == targets.end()) {
      targets.push_back(t.to);
    }
  }
}

const std::vector<StateId>& PsmSimulator::successors(StateId from,
                                                     PropId enabling) const {
  static const std::vector<StateId> kEmpty;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
      static_cast<std::uint32_t>(enabling);
  const auto it = adjacency_.find(key);
  return it == adjacency_.end() ? kEmpty : it->second;
}

PsmSimulator::Session::Session(const PsmSimulator& sim)
    : sim_(&sim), filter_(sim.hmm_) {}

double PsmSimulator::Session::outputPower(unsigned hd_in,
                                          unsigned hd_io) const {
  const StateId s = cur_ != kNoState ? cur_ : sim_->default_state_;
  return sim_->psm_->state(s).output(hd_in, hd_io);
}

std::vector<PsmSimulator::Session::Config>
PsmSimulator::Session::matchingConfigs(StateId s, PropId obs,
                                       bool entry_only) const {
  std::vector<Config> out;
  const auto& alts = sim_->psm_->state(s).assertion.alts;
  for (std::size_t a = 0; a < alts.size(); ++a) {
    const std::size_t limit = entry_only ? 1 : alts[a].size();
    for (std::size_t k = 0; k < limit && k < alts[a].size(); ++k) {
      if (alts[a][k].p == obs) {
        out.push_back({a, k});
        if (entry_only) break;
      }
    }
  }
  return out;
}

/// Ranks a candidate state for a non-deterministic choice. With the HMM:
/// the forward-filtering predictive mass into the state times the emission
/// probability of the best alternative the entry would select (b_j of the
/// observed assertion — previously the emission term was dropped entirely,
/// wasting the B matrix at exactly the decisions it exists for), with the
/// training population as an epsilon tie-break. Without the HMM: training
/// population alone (the frequency-ablation policy).
double PsmSimulator::Session::choiceScore(
    StateId s, const std::vector<Config>& configs) const {
  const PowerState& state = sim_->psm_->state(s);
  if (!sim_->options_.use_hmm) return static_cast<double>(state.power.n);
  double b_best = 0.0;
  for (const Config& c : configs) {
    const EventId e = sim_->hmm_.eventOf(state.assertion.alts[c.alt]);
    b_best = std::max(b_best, sim_->hmm_.b(s, e));
  }
  return filter_.predictiveScore(s, kNoEvent) * b_best +
         1e-9 * static_cast<double>(state.power.n);
}

bool PsmSimulator::Session::enterState(StateId s, PropId obs, bool entry_only,
                                       bool was_choice, PropId enabling) {
  std::vector<Config> configs = matchingConfigs(s, obs, entry_only);
  if (configs.empty()) return false;
  revert_from_ = cur_;
  cur_ = s;
  last_valid_ = s;
  entry_enabling_ = enabling;
  configs_ = std::move(configs);
  lost_ = false;
  entry_was_choice_ = was_choice;
  if (was_choice) ++predictions_;
  if (sim_->options_.use_hmm) {
    // Belief update with the (first) matched assertion as observation.
    const EventId e =
        sim_->hmm_.eventOf(sim_->psm_->state(s).assertion.alts[configs_[0].alt]);
    filter_.step(e);
    filter_.commit(s);
  }
  return true;
}

void PsmSimulator::Session::tryRecognize(PropId obs) {
  if (obs == kNoProp) return;
  // Jump to the state that best explains the observation, anywhere in its
  // assertion set (paper: stay in the last valid state until a known
  // behaviour is finally recognised).
  StateId best = kNoState;
  std::vector<Config> best_configs;
  double best_score = -1.0;
  for (const auto& s : sim_->psm_->states()) {
    std::vector<Config> configs =
        matchingConfigs(s.id, obs, /*entry_only=*/false);
    if (configs.empty()) continue;
    const double score = choiceScore(s.id, configs);
    if (score > best_score) {
      best_score = score;
      best = s.id;
      best_configs = std::move(configs);
    }
  }
  if (best != kNoState) {
    // Recognition is not a transition: the entry carries no enabling
    // proposition, so a later violation in the recognized state can only
    // re-route through *its own* entry context, never a stale one. It is
    // not a *prediction* either — a resync guess recovers from behaviour
    // the model does not cover, and its failure is more of the same
    // unexpected behaviour, not a wrong successor choice (WSP measures
    // the HMM at non-deterministic transitions only).
    enterState(best, obs, /*entry_only=*/false, /*was_choice=*/false,
               /*enabling=*/kNoProp);
  }
}

void PsmSimulator::Session::handleViolation(PropId obs) {
  lost_ = true;
  const StateId wrong_state = cur_;
  const bool was_choice = entry_was_choice_;
  const StateId from = revert_from_;
  const PropId enabling = entry_enabling_;
  // Revert to the last valid state. At the first mis-prediction of a
  // stream there is none: fall back to the desynchronized default (the
  // output uses default_state_) instead of staying in the wrong state.
  cur_ = last_valid_ = from;
  // Every violation is exactly one of the two failure kinds: a failed
  // non-deterministic choice (wrong prediction) or a deterministic path
  // the training traces never covered (unexpected behaviour).
  if (was_choice) {
    ++wrong_;
  } else {
    ++unexpected_;
  }
  if (sim_->options_.use_hmm && wrong_state != kNoState) {
    // Transiently suppress the failed branch so the repair below (and the
    // recognition that may follow) cannot immediately re-pick it; step()
    // lifts the penalty once the session advances cleanly again.
    if (from != kNoState) {
      filter_.penalize(from, wrong_state);
    } else {
      filter_.penalizeState(wrong_state);
    }
  }
  // Follow a different path from the last valid state: another target of
  // the same enabling function that accepts the current observation.
  if (from != kNoState && enabling != kNoProp) {
    std::vector<StateId> viable;
    std::vector<std::vector<Config>> viable_configs;
    for (const StateId c : sim_->successors(from, enabling)) {
      if (c == wrong_state) continue;
      if (sim_->options_.use_hmm &&
          filter_.predictiveScore(c, kNoEvent) <= 0.0) {
        continue;
      }
      std::vector<Config> configs =
          matchingConfigs(c, obs, /*entry_only=*/false);
      if (configs.empty()) continue;
      viable.push_back(c);
      viable_configs.push_back(std::move(configs));
    }
    if (!viable.empty()) {
      std::size_t best = 0;
      double best_score = -1.0;
      for (std::size_t i = 0; i < viable.size(); ++i) {
        const double score = choiceScore(viable[i], viable_configs[i]);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      if (enterState(viable[best], obs, /*entry_only=*/false,
                     /*was_choice=*/viable.size() > 1, enabling)) {
        return;
      }
    }
  }
  // No alternative path: remain in the last valid state and wait for a
  // recognisable behaviour.
  tryRecognize(obs);
}

void PsmSimulator::Session::bufferObs(std::vector<Run>& buffer, PropId obs) {
  if (!buffer.empty() && buffer.back().p == obs &&
      buffer.back().count < std::numeric_limits<std::uint32_t>::max()) {
    ++buffer.back().count;
  } else {
    buffer.push_back({obs, 1});
  }
}

double PsmSimulator::Session::step(const std::vector<common::BitVector>& row) {
  // Input and interface Hamming distances for the regression output
  // functions.
  unsigned hd_in = 0;
  unsigned hd_io = 0;
  if (!prev_inputs_.empty()) {
    for (std::size_t k = 0; k < row.size(); ++k) {
      const unsigned d = common::BitVector::hammingDistance(row[k], prev_inputs_[k]);
      hd_io += d;
      if (sim_->is_input_[k]) hd_in += d;
    }
  }
  prev_inputs_ = row;

  const PropId obs = sim_->domain_->findRow(row);

  if (!started_) {
    started_ = true;
    if (obs != kNoProp) {
      // Choose the starting state among all initial states (Sec. V).
      std::vector<StateId> candidates;
      for (const StateId s : sim_->psm_->initialStates()) {
        if (!matchingConfigs(s, obs, /*entry_only=*/true).empty()) {
          candidates.push_back(s);
        }
      }
      StateId pick = kNoState;
      if (!candidates.empty()) {
        pick = sim_->options_.use_hmm
                   ? filter_.bestInitial(candidates, kNoEvent)
                   : candidates.front();
      }
      if (pick == kNoState ||
          !enterState(pick, obs, /*entry_only=*/true,
                      /*was_choice=*/candidates.size() > 1,
                      /*enabling=*/kNoProp)) {
        tryRecognize(obs);
      }
    }
  } else if (lost_) {
    tryRecognize(obs);
  } else {
    for (auto& chk : checkpoints_) bufferObs(chk.buffer, obs);
    while (!checkpoints_.empty() &&
           checkpoints_.front().buffer.size() > kMaxBacktrackRuns) {
      checkpoints_.erase(checkpoints_.begin());
    }
    if (advanceCore(obs, /*allow_checkpoint=*/true) == Advance::Violation) {
      if (!tryBacktrack()) handleViolation(obs);
    } else if (filter_.hasPenalties()) {
      // A clean advance ends the mis-prediction repair: restore the
      // trained transition matrix (hmm.hpp "transient penalties").
      filter_.relax();
    }
  }
  // The single lost-instant accounting point: a row counts as lost iff
  // its processing ends desynchronized (so no path can count one row
  // twice, and a violation repaired within the row counts zero).
  if (lost_) ++lost_instants_;
  return outputPower(hd_in, hd_io);
}

PsmSimulator::Session::Advance PsmSimulator::Session::advanceCore(
    PropId obs, bool allow_checkpoint) {
  // Advance every viable alternative of the current state's assertion.
  const auto& alts = sim_->psm_->state(cur_).assertion.alts;
  std::vector<Config> survivors;
  bool exit_requested = false;
  for (const Config& c : configs_) {
    const PatternSeq& seq = alts[c.alt];
    const Pattern& pat = seq[c.pos];
    if (pat.is_until && obs == pat.p) {
      survivors.push_back(c);  // still inside the until run
      continue;
    }
    if (pat.q != kNoProp && obs == pat.q) {
      if (c.pos + 1 < seq.size()) {
        // The exit proposition opens the next pattern of the sequence
        // (its entry proposition by construction).
        survivors.push_back({c.alt, c.pos + 1});
      } else {
        exit_requested = true;
      }
      continue;
    }
    // Alternative dies.
  }

  if (!survivors.empty()) {
    // Alternatives that continue win over alternatives that exit, but the
    // forgone exit is checkpointed: if the surviving interpretation later
    // dies, tryBacktrack() revisits the exit and replays the buffered
    // observations through it (bounded NFA backtracking).
    if (allow_checkpoint && exit_requested &&
        !sim_->successors(cur_, obs).empty()) {
      if (checkpoints_.size() >= kMaxCheckpoints) {
        checkpoints_.erase(checkpoints_.begin());
      }
      checkpoints_.push_back({cur_, obs, {}});
    }
    configs_ = std::move(survivors);
    return Advance::Stayed;
  }

  if (!exit_requested && sim_->options_.generalize_exits &&
      !sim_->successors(cur_, obs).empty()) {
    // Generalized exit (documented extension): every alternative died, but
    // the state has a trained transition enabled by the observation — the
    // state's exit alphabet is the union of its alternatives' exits, so
    // an occupancy that was valid until now may leave through any of
    // them (e.g. an idle that outlived its next-pattern alternative and
    // then sees that alternative's exit proposition).
    exit_requested = true;
  }

  if (!exit_requested) return Advance::Violation;

  // Leave through the transition enabled by the observed proposition.
  const std::vector<StateId>& candidates = sim_->successors(cur_, obs);
  std::vector<StateId> viable;
  std::vector<std::vector<Config>> viable_configs;
  for (const StateId c : candidates) {
    std::vector<Config> configs = matchingConfigs(c, obs, /*entry_only=*/true);
    if (configs.empty()) continue;
    viable.push_back(c);
    viable_configs.push_back(std::move(configs));
  }
  if (!viable.empty()) {
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < viable.size(); ++i) {
      const double score = choiceScore(viable[i], viable_configs[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (enterState(viable[best], obs, /*entry_only=*/true,
                   /*was_choice=*/viable.size() > 1, /*enabling=*/obs)) {
      return Advance::Exited;
    }
  }
  return Advance::Violation;
}

bool PsmSimulator::Session::tryBacktrack() {
  while (!checkpoints_.empty()) {
    if (tryCheckpoint()) return true;
  }
  return false;
}

/// Attempts the newest checkpoint; pops it regardless of the outcome.
bool PsmSimulator::Session::tryCheckpoint() {
  Checkpoint chk = std::move(checkpoints_.back());
  checkpoints_.pop_back();

  const StateId from = chk.state;
  const PropId enabling = chk.enabling;
  const std::vector<Run>& buffer = chk.buffer;

  // Take the forgone exit at the checkpointed instant...
  const std::vector<StateId>& candidates = sim_->successors(from, enabling);
  std::vector<StateId> viable;
  for (const StateId c : candidates) {
    if (!matchingConfigs(c, enabling, /*entry_only=*/true).empty()) {
      viable.push_back(c);
    }
  }
  if (viable.empty()) return false;
  // Order candidates by HMM preference but try them all: the revision is a
  // deterministic reinterpretation of already-seen behaviour, so whichever
  // candidate replays the buffered observations is the right one.
  if (sim_->options_.use_hmm) {
    const StateId best = filter_.bestAmong(viable, kNoEvent);
    for (std::size_t i = 0; i < viable.size(); ++i) {
      if (viable[i] == best) {
        std::swap(viable[0], viable[i]);
        break;
      }
    }
  }
  for (const StateId pick : viable) {
    cur_ = from;
    if (!enterState(pick, enabling, /*entry_only=*/true,
                    /*was_choice=*/false, enabling)) {
      continue;
    }
    bool ok = true;
    // Conflicts during the replay may record checkpoints of their own;
    // those only see the remaining buffered observations (older
    // checkpoints already received them through step()).
    const std::size_t baseline = checkpoints_.size();
    for (const Run& run : buffer) {
      for (std::uint32_t r = 0; ok && r < run.count; ++r) {
        for (std::size_t j = baseline; j < checkpoints_.size(); ++j) {
          bufferObs(checkpoints_[j].buffer, run.p);
        }
        if (advanceCore(run.p, /*allow_checkpoint=*/true) ==
            Advance::Violation) {
          ok = false;
        }
      }
      if (!ok) break;
    }
    if (ok) return true;
    // Drop checkpoints recorded under the failed interpretation.
    checkpoints_.resize(std::min(checkpoints_.size(), baseline));
  }
  return false;
}

SimResult PsmSimulator::simulate(const trace::FunctionalTrace& trace) const {
  obs::Span span("sim.simulate", "sim");
  Session session = startSession();
  SimResult result;
  result.estimate.reserve(trace.length());
  for (std::size_t t = 0; t < trace.length(); ++t) {
    result.estimate.push_back(session.step(trace.step(t)));
  }
  result.predictions = session.predictions();
  result.wrong_predictions = session.wrongPredictions();
  result.unexpected_behaviours = session.unexpectedBehaviours();
  result.lost_instants = session.lostInstants();

  obs::Registry& reg = obs::metrics();
  reg.counter("sim.instants").add(result.estimate.size());
  reg.counter("sim.predictions").add(result.predictions);
  reg.counter("sim.wrong_predictions").add(result.wrong_predictions);
  reg.counter("sim.unexpected_behaviours").add(result.unexpected_behaviours);
  reg.counter("sim.lost_instants").add(result.lost_instants);
  reg.gauge("sim.wsp_percent").set(result.wspPercent());
  obs::debug("sim.simulated", {{"instants", result.estimate.size()},
                               {"predictions", result.predictions},
                               {"wrong", result.wrong_predictions},
                               {"unexpected", result.unexpected_behaviours},
                               {"lost", result.lost_instants},
                               {"wsp_percent", result.wspPercent()}});
  return result;
}

}  // namespace psmgen::core
