file(REMOVE_RECURSE
  "CMakeFiles/psmgen_sysc.dir/kernel.cpp.o"
  "CMakeFiles/psmgen_sysc.dir/kernel.cpp.o.d"
  "CMakeFiles/psmgen_sysc.dir/modules.cpp.o"
  "CMakeFiles/psmgen_sysc.dir/modules.cpp.o.d"
  "libpsmgen_sysc.a"
  "libpsmgen_sysc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmgen_sysc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
