#include "core/refine.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace psmgen::core {

RefineReport refineDataDependentStates(
    Psm& psm, const std::vector<trace::FunctionalTrace>& functional,
    const std::vector<trace::PowerTrace>& power, const RefineConfig& cfg) {
  if (functional.size() != power.size()) {
    throw std::invalid_argument("refine: trace vectors size mismatch");
  }
  RefineReport report;
  for (StateId id = 0; id < static_cast<StateId>(psm.stateCount()); ++id) {
    PowerState& s = psm.state(id);
    if (s.power.cv() <= cfg.min_cv) continue;
    ++report.candidates;

    std::vector<double> hd_in;
    std::vector<double> hd_io;
    std::vector<double> watts;
    for (const Interval& iv : s.intervals) {
      if (iv.trace_id < 0 ||
          static_cast<std::size_t>(iv.trace_id) >= functional.size()) {
        throw std::out_of_range("refine: interval references unknown trace");
      }
      const auto& f = functional[static_cast<std::size_t>(iv.trace_id)];
      const auto& p = power[static_cast<std::size_t>(iv.trace_id)];
      for (std::size_t t = iv.start; t <= iv.stop; ++t) {
        hd_in.push_back(static_cast<double>(f.inputHammingDistance(t)));
        hd_io.push_back(static_cast<double>(f.rowHammingDistance(t)));
        watts.push_back(p.at(t));
      }
    }
    if (watts.size() < cfg.min_samples) continue;
    // Try both observables and keep the better-correlated one (the
    // methodology observes the whole black-box interface; which part
    // drives the power is IP-dependent).
    const stats::LinearFit fit_in = stats::linearRegression(hd_in, watts);
    const stats::LinearFit fit_io = stats::linearRegression(hd_io, watts);
    const bool use_inputs =
        std::fabs(fit_in.pearson_r) >= std::fabs(fit_io.pearson_r);
    const stats::LinearFit& best = use_inputs ? fit_in : fit_io;
    obs::metrics().counter("refine.regressions_fitted").add(2);
    obs::metrics().histogram("refine.sigma").record(s.power.stddev);
    obs::metrics().histogram("refine.cv").record(s.power.cv());
    obs::metrics().histogram("refine.abs_pearson_r")
        .record(std::fabs(best.pearson_r));
    if (std::fabs(best.pearson_r) < cfg.min_abs_r) continue;
    s.regression = best;
    s.regression_scope =
        use_inputs ? HammingScope::Inputs : HammingScope::Interface;
    ++report.refined;
  }
  obs::metrics().counter("refine.candidates").add(report.candidates);
  obs::metrics().counter("refine.refined").add(report.refined);
  obs::debug("refine.done", {{"candidates", report.candidates},
                             {"refined", report.refined}});
  return report;
}

}  // namespace psmgen::core
