#pragma once
// Findings produced by the PSM model static analyzer (`psmgen lint`).
//
// A finding is one violation of a semantic well-formedness rule over a
// trained PSM model (or over the artifact that carries it), identified
// by a stable check id like "PSM-TRANS-001". Ids never change meaning
// once shipped: suppressions (`--suppress`), CI gates and dashboards
// key on them. The full catalogue lives in analysis::checkRegistry()
// and is documented in README.md / DESIGN.md.
//
// Severity semantics:
//   Error — the model is semantically broken; predict/serve over it is
//           undefined or silently wrong. CI gates fail on these.
//   Warn  — suspicious but servable (e.g. a power attribute pooled from
//           a single sample); escalated to the gate by --werror.
//   Info  — structural observations (sink states, HMM-resolved
//           nondeterminism) that are normal for mined PSMs but worth
//           surfacing in a report.

#include <cstddef>
#include <string>
#include <vector>

#include "core/psm.hpp"

namespace psmgen::analysis {

enum class Severity { Info = 0, Warn = 1, Error = 2 };

/// Stable lowercase name ("info", "warn", "error").
const char* severityName(Severity severity);

/// Where in the model a finding anchors. All fields are optional — the
/// renderers omit the unset ones — so artifact-level findings (which
/// have no state to point at) and state-level findings share one shape.
struct Locus {
  core::StateId state = core::kNoState;
  int alt = -1;         ///< assertion alternative index within the state
  int transition = -1;  ///< index into Psm::transitions()
  std::string detail;   ///< free-form anchor, e.g. the artifact field name

  bool operator==(const Locus&) const = default;
};

struct Finding {
  std::string check_id;  ///< stable id, e.g. "PSM-TRANS-001"
  Severity severity = Severity::Error;
  Locus locus;
  std::string message;  ///< what is wrong, with the offending values
  std::string hint;     ///< how to fix it / what it implies downstream

  bool operator==(const Finding&) const = default;
};

/// The result of one lint run: findings in deterministic scan order
/// plus the per-severity tally the exit-code policy is defined over.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;

  void add(Finding finding);

  /// No error-severity findings (warnings and infos allowed).
  bool clean() const { return errors == 0; }
};

}  // namespace psmgen::analysis
