#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace psmgen::serve {

namespace {

bool sendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone, or SO_SNDTIMEO expired (slow client)
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void setTimeoutMs(int fd, int option, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Receive poll granularity: the connection loop wakes this often to
/// notice drain and to advance the idle clock, whatever the client does.
constexpr int kRecvPollMs = 100;

/// "ip:port" of the accepted peer; "unknown" when getpeername fails.
std::string peerName(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "unknown";
  }
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

PredictionServer::PredictionServer(const serialize::PsmModel& model,
                                   ServerConfig config)
    : model_(model), config_(std::move(config)) {}

PredictionServer::~PredictionServer() { stop(); }

bool PredictionServer::listen() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    obs::error("serve.socket_failed", {{"errno", common::errnoMessage(errno)}});
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, config_.backlog) < 0) {
    obs::error("serve.bind_failed",
               {{"port", config_.port}, {"errno", common::errnoMessage(errno)}});
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd, std::memory_order_release);
  return true;
}

void PredictionServer::start() {
  if (listen_fd_.load(std::memory_order_acquire) < 0 || running()) return;
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { acceptLoop(); });
  obs::info("serve.listening",
            {{"port", port_},
             {"max_sessions", config_.max_sessions},
             {"rows_per_second", config_.rows_per_second}});
}

void PredictionServer::beginDrain() {
  if (draining_.exchange(true, std::memory_order_relaxed)) return;
  obs::metrics().gauge("serve.draining").set(1.0);
  obs::info("serve.draining",
            {{"active_sessions", active_.load(std::memory_order_relaxed)}});
  // Closing the listener both refuses new connects at the kernel and
  // unblocks the accept loop; live sessions notice the flag at their
  // next recv poll, after answering the frames already consumed.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void PredictionServer::stop() {
  const bool was_running = running_.exchange(false, std::memory_order_relaxed);
  beginDrain();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    common::MutexLock lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  if (was_running) {
    obs::info("serve.stopped",
              {{"sessions_total", total_.load(std::memory_order_relaxed)}});
  }
}

void PredictionServer::reapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void PredictionServer::acceptLoop() {
  while (running()) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // drain/stop reclaimed the socket
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    setTimeoutMs(fd, SO_SNDTIMEO, config_.io_timeout_ms);
    if (active_.load(std::memory_order_relaxed) >= config_.max_sessions) {
      obs::metrics().counter("serve.sessions_rejected").add(1);
      sendAll(fd, encodeError({ErrorCode::Busy,
                               "session cap of " +
                                   std::to_string(config_.max_sessions) +
                                   " reached"}));
      ::close(fd);
      continue;
    }
    total_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t now_active =
        active_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::metrics().counter("serve.sessions_total").add(1);
    obs::metrics()
        .gauge("serve.sessions_active")
        .set(static_cast<double>(now_active));
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    std::string peer = peerName(fd);
    conn->thread = std::thread([this, fd, raw, peer = std::move(peer)] {
      runConnection(fd, peer);
      raw->done.store(true, std::memory_order_release);
    });
    common::MutexLock lock(conns_mutex_);
    conns_.push_back(std::move(conn));
    reapFinishedLocked();
  }
}

void PredictionServer::runConnection(int fd, std::string peer) {
  setTimeoutMs(fd, SO_RCVTIMEO, kRecvPollMs);
  Session::Config scfg;
  scfg.model_id = config_.model_id;
  scfg.max_frame_payload = config_.max_frame_payload;
  scfg.rows_per_second = config_.rows_per_second;
  scfg.quality = config_.quality;
  Session session(model_, scfg);

  // Register in the live-session registry and bind the observability
  // layer to this thread: every flight event recorded below (including
  // from QualityMonitor, which knows nothing about sessions) carries the
  // session id, every trace span lands in this session's own lane, and
  // log lines from the session carry the id field.
  std::shared_ptr<SessionRecord> record = registry_.open(std::move(peer));
  const std::uint64_t session_id = record->id;
  session.bindRecord(record);
  obs::FlightRecorder::setThreadSession(session_id);
  obs::setThreadLane(obs::kServeLaneBase + static_cast<int>(session_id));
  if (obs::flightRecorder().enabled()) {
    obs::FlightEvent event;
    event.kind = static_cast<std::uint16_t>(obs::FlightEventKind::SessionOpen);
    const std::uint64_t event_id = obs::flightRecorder().record(event);
    record->last_event_id.store(event_id, std::memory_order_relaxed);
  }
  obs::debug("serve.session_open", {{"session", session_id},
                                    {"peer", record->peer}});

  std::string out;
  char buf[16384];
  int idle_ms = 0;
  for (;;) {
    if (draining()) {
      out.clear();
      session.abort(ErrorCode::Draining, "server is draining", out);
      sendAll(fd, out);  // best effort; we are closing either way
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      idle_ms = 0;
      out.clear();
      const bool alive = session.consume(buf, static_cast<std::size_t>(n), out);
      // Flush-before-read is the backpressure: while this send blocks on
      // a slow client we consume nothing more from the socket.
      if (!out.empty() && !sendAll(fd, out)) {
        obs::metrics().counter("serve.slow_client_drops").add(1);
        break;
      }
      if (!alive) break;
    } else if (n == 0) {
      break;  // peer closed without Fin; counters die with the session
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      idle_ms += kRecvPollMs;
      if (idle_ms >= config_.idle_timeout_ms) {
        out.clear();
        session.abort(ErrorCode::IdleTimeout,
                      "no data for " + std::to_string(idle_ms) + " ms", out);
        sendAll(fd, out);
        break;
      }
    } else {
      break;
    }
  }
  ::close(fd);
  if (obs::flightRecorder().enabled()) {
    obs::FlightEvent event;
    event.row = session.rows();
    event.detail = static_cast<std::uint32_t>(session.rows());
    event.kind = static_cast<std::uint16_t>(obs::FlightEventKind::SessionClose);
    obs::flightRecorder().record(event);
  }
  registry_.close(session_id);
  obs::FlightRecorder::setThreadSession(0);
  obs::setThreadLane(0);
  const std::size_t now_active =
      active_.fetch_sub(1, std::memory_order_relaxed) - 1;
  obs::metrics()
      .gauge("serve.sessions_active")
      .set(static_cast<double>(now_active));
  obs::debug("serve.session_closed",
             {{"session", session_id},
              {"rows", session.rows()},
              {"state", static_cast<int>(session.state())}});
}

}  // namespace psmgen::serve
