#pragma once
// Variable metadata for functional traces (paper Def. 2): the set V of
// primary inputs and primary outputs a trace predicates over.

#include <string>
#include <vector>

namespace psmgen::trace {

enum class VarKind { Input, Output };

struct VariableDef {
  std::string name;
  unsigned width = 1;
  VarKind kind = VarKind::Input;

  bool operator==(const VariableDef&) const = default;
};

/// An ordered variable set; index positions are the variable ids used by
/// traces and mined propositions.
class VariableSet {
 public:
  VariableSet() = default;
  explicit VariableSet(std::vector<VariableDef> vars);

  /// Appends a variable; returns its id. Throws on duplicate name.
  int add(const std::string& name, unsigned width, VarKind kind);

  std::size_t size() const { return vars_.size(); }
  const VariableDef& operator[](std::size_t i) const { return vars_.at(i); }
  const std::vector<VariableDef>& all() const { return vars_; }

  /// Id of the named variable, or -1 if absent.
  int find(const std::string& name) const;

  /// Ids of all input (respectively output) variables, in order.
  std::vector<int> inputs() const;
  std::vector<int> outputs() const;

  /// Total bit width of all input variables.
  unsigned inputBits() const;
  /// Total bit width of all output variables.
  unsigned outputBits() const;

  bool operator==(const VariableSet&) const = default;

 private:
  std::vector<VariableDef> vars_;
};

}  // namespace psmgen::trace
