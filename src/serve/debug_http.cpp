#include "serve/debug_http.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/flight_recorder.hpp"
#include "runtime/quality_monitor.hpp"
#include "serve/server.hpp"

namespace psmgen::serve {

namespace {

const char* sessionStateName(int state) {
  switch (static_cast<Session::State>(state)) {
    case Session::State::AwaitHello: return "await_hello";
    case Session::State::Streaming: return "streaming";
    case Session::State::Done: return "done";
    case Session::State::Failed: return "failed";
  }
  return "?";
}

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string renderSessionsJson(const PredictionServer& server) {
  const auto records = server.sessions().snapshot();
  const auto now = std::chrono::steady_clock::now();
  std::string out;
  out.reserve(256 + records.size() * 192);
  out += "{\n  \"schema\": \"psmgen.sessions.v1\",\n  \"active\": ";
  out += std::to_string(records.size());
  out += ",\n  \"total_opened\": ";
  out += std::to_string(server.sessions().totalOpened());
  out += ",\n  \"truncated\": ";
  out += records.size() > kMaxSessionsRendered ? "true" : "false";
  out += ",\n  \"sessions\": [";
  bool first = true;
  std::size_t rendered = 0;
  for (const auto& r : records) {
    if (rendered++ >= kMaxSessionsRendered) break;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(r->id) + ", \"peer\": \"";
    appendEscaped(out, r->peer);
    out += "\", \"uptime_seconds\": ";
    appendDouble(out,
                 std::chrono::duration<double>(now - r->start).count());
    out += ", \"state\": \"";
    out += sessionStateName(r->state.load(std::memory_order_relaxed));
    out += "\", \"rows\": ";
    out += std::to_string(r->rows.load(std::memory_order_relaxed));
    out += ", \"frames\": ";
    out += std::to_string(r->frames.load(std::memory_order_relaxed));
    out += ", \"predictions\": ";
    out += std::to_string(r->predictions.load(std::memory_order_relaxed));
    out += ", \"wsp_percent\": ";
    appendDouble(out, r->wspPercent());
    out += ", \"resyncs\": ";
    out += std::to_string(r->resyncs.load(std::memory_order_relaxed));
    out += ", \"drift\": \"";
    out += runtime::driftStatusName(static_cast<runtime::DriftStatus>(
        r->drift.load(std::memory_order_relaxed)));
    out += "\", \"rate_stalls\": ";
    out += std::to_string(r->rate_stalls.load(std::memory_order_relaxed));
    out += ", \"last_event_id\": ";
    out += std::to_string(r->last_event_id.load(std::memory_order_relaxed));
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string renderEventsJson(std::uint64_t session) {
  std::ostringstream os;
  obs::flightRecorder().writeJson(os, "on_demand", session,
                                  kMaxEventsRendered);
  return os.str();
}

void registerDebugRoutes(obs::HttpServer& http, const PredictionServer* server,
                         std::string build_json) {
  using Request = obs::HttpServer::Request;
  using Response = obs::HttpServer::Response;

  http.handle("/debug/sessions", [server](const Request&) -> Response {
    if (server == nullptr) {
      return {404, "text/plain; charset=utf-8",
              "no live session registry (stdio mode serves one implicit "
              "stream; use /debug/events)\n"};
    }
    return {200, "application/json; charset=utf-8",
            renderSessionsJson(*server)};
  });

  http.handle("/debug/events", [server](const Request& request) -> Response {
    std::uint64_t session = 0;
    const std::string raw = request.queryParam("session");
    if (!raw.empty()) {
      char* end = nullptr;
      session = std::strtoull(raw.c_str(), &end, 10);
      if (end == raw.c_str() || *end != '\0' || session == 0) {
        return {400, "text/plain; charset=utf-8",
                "session must be a positive integer\n"};
      }
      const bool live =
          server != nullptr && server->sessions().find(session) != nullptr;
      if (!live && !obs::flightRecorder().hasSession(session)) {
        return {404, "text/plain; charset=utf-8",
                "unknown session " + raw + "\n"};
      }
    }
    return {200, "application/json; charset=utf-8",
            renderEventsJson(session)};
  });

  http.handle("/debug/build",
              [build_json = std::move(build_json)](const Request&) -> Response {
                return {200, "application/json; charset=utf-8", build_json};
              });
}

}  // namespace psmgen::serve
