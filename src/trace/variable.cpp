#include "trace/variable.hpp"

#include <stdexcept>

namespace psmgen::trace {

VariableSet::VariableSet(std::vector<VariableDef> vars) : vars_(std::move(vars)) {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    for (std::size_t j = i + 1; j < vars_.size(); ++j) {
      if (vars_[i].name == vars_[j].name) {
        throw std::invalid_argument("VariableSet: duplicate variable name " +
                                    vars_[i].name);
      }
    }
  }
}

int VariableSet::add(const std::string& name, unsigned width, VarKind kind) {
  if (find(name) >= 0) {
    throw std::invalid_argument("VariableSet::add: duplicate name " + name);
  }
  vars_.push_back({name, width, kind});
  return static_cast<int>(vars_.size() - 1);
}

int VariableSet::find(const std::string& name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> VariableSet::inputs() const {
  std::vector<int> ids;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].kind == VarKind::Input) ids.push_back(static_cast<int>(i));
  }
  return ids;
}

std::vector<int> VariableSet::outputs() const {
  std::vector<int> ids;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].kind == VarKind::Output) ids.push_back(static_cast<int>(i));
  }
  return ids;
}

unsigned VariableSet::inputBits() const {
  unsigned bits = 0;
  for (const auto& v : vars_) {
    if (v.kind == VarKind::Input) bits += v.width;
  }
  return bits;
}

unsigned VariableSet::outputBits() const {
  unsigned bits = 0;
  for (const auto& v : vars_) {
    if (v.kind == VarKind::Output) bits += v.width;
  }
  return bits;
}

}  // namespace psmgen::trace
