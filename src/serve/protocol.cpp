#include "serve/protocol.hpp"

#include <cstring>

namespace psmgen::serve {

namespace {

void putU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void putU16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) putU8(out, (v >> (8 * i)) & 0xFF);
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) putU8(out, (v >> (8 * i)) & 0xFF);
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) putU8(out, (v >> (8 * i)) & 0xFF);
}

void putF64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void putString(std::string& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& payload, const char* what)
      : data_(payload.data()), size_(payload.size()), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(uint(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint(4)); }
  std::uint64_t u64() { return uint(8); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  const std::uint8_t* bytes(std::size_t n) {
    need(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  /// Every payload decoder ends with this: trailing bytes mean the peer
  /// and we disagree about the layout, which is never recoverable.
  void done() const {
    if (pos_ != size_) {
      throw ProtocolError(ErrorCode::Protocol,
                          std::string(what_) + ": trailing payload bytes");
    }
  }

 private:
  std::uint64_t uint(int bytes) {
    need(static_cast<std::size_t>(bytes));
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw ProtocolError(ErrorCode::Protocol,
                          std::string(what_) + ": truncated payload");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

std::size_t rowBytes(const trace::VariableSet& vars) {
  std::size_t n = 0;
  for (const auto& v : vars.all()) n += (v.width + 7) / 8;
  return n;
}

void putBitVector(std::string& out, const common::BitVector& v) {
  const std::size_t nbytes = (v.width() + 7) / 8;
  for (std::size_t i = 0; i < nbytes; ++i) {
    putU8(out, static_cast<std::uint8_t>(v.limb(i / 8) >> (8 * (i % 8))));
  }
}

common::BitVector readBitVector(const std::uint8_t* bytes, unsigned width) {
  common::BitVector v(width);
  const unsigned nbytes = (width + 7) / 8;
  for (unsigned i = 0; i < nbytes; ++i) {
    const std::uint8_t b = bytes[i];
    if (b == 0) continue;
    for (unsigned j = 0; j < 8; ++j) {
      const unsigned bit = 8 * i + j;
      if (bit < width && ((b >> j) & 1)) v.setBit(bit, true);
    }
  }
  // Bits above `width` in the last byte must be zero: a peer setting them
  // is packing against a different variable set than it negotiated.
  const unsigned spare = 8 * nbytes - width;
  if (spare != 0 &&
      (bytes[nbytes - 1] >> (8 - spare)) != 0) {
    throw ProtocolError(ErrorCode::Protocol,
                        "rows: nonzero padding bits in packed value");
  }
  return v;
}

}  // namespace

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::VersionMismatch: return "version_mismatch";
    case ErrorCode::BadVariables: return "bad_variables";
    case ErrorCode::BadModel: return "bad_model";
    case ErrorCode::Protocol: return "protocol";
    case ErrorCode::Busy: return "busy";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::IdleTimeout: return "idle_timeout";
    case ErrorCode::Oversized: return "oversized";
    case ErrorCode::Internal: return "internal";
  }
  return "unknown";
}

std::string encodeFrame(FrameType type, const std::uint8_t* payload,
                        std::size_t size) {
  std::string out;
  out.reserve(5 + size);
  putU8(out, static_cast<std::uint8_t>(type));
  putU32(out, static_cast<std::uint32_t>(size));
  if (size != 0) {
    out.append(reinterpret_cast<const char*>(payload), size);
  }
  return out;
}

namespace {
std::string finishFrame(FrameType type, const std::string& payload) {
  return encodeFrame(type,
                     reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size());
}
}  // namespace

std::string encodeHello(const HelloRequest& hello) {
  std::string p;
  putU32(p, hello.version);
  putString(p, hello.model_id);
  putString(p, hello.variables);
  return finishFrame(FrameType::Hello, p);
}

std::string encodeHelloOk(const HelloReply& reply) {
  std::string p;
  putU32(p, reply.version);
  putString(p, reply.model_id);
  putU32(p, reply.psm_format_version);
  putU32(p, reply.states);
  putU32(p, reply.transitions);
  putString(p, reply.variables);
  return finishFrame(FrameType::HelloOk, p);
}

std::string encodeRows(
    const std::vector<std::vector<common::BitVector>>& rows) {
  std::string p;
  putU32(p, static_cast<std::uint32_t>(rows.size()));
  for (const auto& row : rows) {
    for (const auto& v : row) putBitVector(p, v);
  }
  return finishFrame(FrameType::Rows, p);
}

std::string encodeEst(const std::vector<EstRow>& rows) {
  std::string p;
  putU32(p, static_cast<std::uint32_t>(rows.size()));
  for (const EstRow& r : rows) {
    putF64(p, r.estimate);
    putU8(p, r.flags);
  }
  return finishFrame(FrameType::Est, p);
}

std::string encodeFin() { return finishFrame(FrameType::Fin, ""); }

std::string encodeFinAck(const FinSummary& summary) {
  std::string p;
  putU64(p, summary.rows);
  putU64(p, summary.predictions);
  putU64(p, summary.wrong_predictions);
  putU64(p, summary.unexpected_behaviours);
  putU64(p, summary.lost_instants);
  putU64(p, summary.resyncs);
  putU8(p, summary.drift_status);
  return finishFrame(FrameType::FinAck, p);
}

std::string encodeError(const ErrorFrame& error) {
  std::string p;
  putU16(p, static_cast<std::uint16_t>(error.code));
  putString(p, error.message);
  return finishFrame(FrameType::Error, p);
}

HelloRequest decodeHello(const std::vector<std::uint8_t>& payload) {
  Reader r(payload, "hello");
  HelloRequest hello;
  hello.version = r.u32();
  hello.model_id = r.str();
  hello.variables = r.str();
  r.done();
  return hello;
}

HelloReply decodeHelloOk(const std::vector<std::uint8_t>& payload) {
  Reader r(payload, "hello_ok");
  HelloReply reply;
  reply.version = r.u32();
  reply.model_id = r.str();
  reply.psm_format_version = r.u32();
  reply.states = r.u32();
  reply.transitions = r.u32();
  reply.variables = r.str();
  r.done();
  return reply;
}

std::vector<std::vector<common::BitVector>> decodeRows(
    const std::vector<std::uint8_t>& payload, const trace::VariableSet& vars) {
  Reader r(payload, "rows");
  const std::uint32_t count = r.u32();
  const std::size_t stride = rowBytes(vars);
  // Arity is checked up front so the error names the real problem
  // instead of a generic truncation mid-row.
  if (payload.size() != 4 + static_cast<std::size_t>(count) * stride) {
    throw ProtocolError(ErrorCode::Protocol,
                        "rows: payload size does not match row count");
  }
  std::vector<std::vector<common::BitVector>> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::vector<common::BitVector> row;
    row.reserve(vars.size());
    for (const auto& v : vars.all()) {
      row.push_back(readBitVector(r.bytes((v.width + 7) / 8), v.width));
    }
    rows.push_back(std::move(row));
  }
  r.done();
  return rows;
}

std::vector<EstRow> decodeEst(const std::vector<std::uint8_t>& payload) {
  Reader r(payload, "est");
  const std::uint32_t count = r.u32();
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 9) {
    throw ProtocolError(ErrorCode::Protocol,
                        "est: payload size does not match row count");
  }
  std::vector<EstRow> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EstRow row;
    row.estimate = r.f64();
    row.flags = r.u8();
    rows.push_back(row);
  }
  r.done();
  return rows;
}

FinSummary decodeFinAck(const std::vector<std::uint8_t>& payload) {
  Reader r(payload, "fin_ack");
  FinSummary s;
  s.rows = r.u64();
  s.predictions = r.u64();
  s.wrong_predictions = r.u64();
  s.unexpected_behaviours = r.u64();
  s.lost_instants = r.u64();
  s.resyncs = r.u64();
  s.drift_status = r.u8();
  r.done();
  return s;
}

ErrorFrame decodeError(const std::vector<std::uint8_t>& payload) {
  Reader r(payload, "error");
  ErrorFrame e;
  e.code = static_cast<ErrorCode>(r.u16());
  e.message = r.str();
  r.done();
  return e;
}

void FrameDecoder::feed(const void* data, std::size_t size) {
  // Compact lazily: the consumed prefix is dropped once it dominates the
  // buffer, so feeding byte-at-a-time stays linear, not quadratic.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 5) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint8_t type = head[0];
  if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
      type > static_cast<std::uint8_t>(FrameType::Error)) {
    throw ProtocolError(ErrorCode::Protocol, "unknown frame type " +
                                                 std::to_string(type));
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(head[1 + i]) << (8 * i);
  }
  if (len > max_payload_) {
    throw ProtocolError(ErrorCode::Oversized,
                        "frame payload of " + std::to_string(len) +
                            " bytes exceeds the cap of " +
                            std::to_string(max_payload_));
  }
  if (avail < 5 + static_cast<std::size_t>(len)) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(head + 5, head + 5 + len);
  consumed_ += 5 + static_cast<std::size_t>(len);
  return frame;
}

}  // namespace psmgen::serve
