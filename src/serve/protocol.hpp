#pragma once
// Wire protocol of the concurrent prediction service (psmgen.serve.v1).
//
// A session is a single TCP connection speaking length-prefixed binary
// frames. Every frame is
//
//   +------+-------------+----------------------+
//   | type | payload_len | payload              |
//   | u8   | u32 LE      | payload_len bytes    |
//   +------+-------------+----------------------+
//
// and the conversation is
//
//   client                                server
//     | -- Hello {version, model, vars} --> |   negotiate
//     | <-- HelloOk {model shape, vars} --  |
//     | -- Rows {n, packed rows} ---------> |   repeated
//     | <-- Est {n, estimate+flags rows} -- |
//     | -- Fin ---------------------------> |
//     | <-- FinAck {session summary} -----  |
//
// with Error {code, message} possible from the server at any point,
// after which the server closes the connection. The protocol version is
// negotiated in Hello: a client speaking a different version is rejected
// with ErrorCode::VersionMismatch before any row is accepted, and the
// variable declaration (the same "name:kind:width,..." line the CSV
// trace format uses) must match the served model's domain exactly —
// a silent width mismatch would corrupt every estimate after it.
//
// Row packing: each row carries one value per trace variable, in
// variable-set order; each value occupies ceil(width/8) bytes,
// little-endian (bit i of the value is bit i%8 of byte i/8). Estimates
// come back as one IEEE-754 double (little-endian) plus one flags byte
// per row, so violations ride the estimate stream instead of needing a
// side channel.
//
// Everything here is pure bytes-in/bytes-out (no sockets): the codec is
// exercised by tests/test_serve_protocol.cpp against golden byte
// strings, short reads split at every byte boundary, and garbage input.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "trace/variable.hpp"

namespace psmgen::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on a single frame's payload; a frame claiming more is a
/// protocol error, not an allocation.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  Hello = 1,
  HelloOk = 2,
  Rows = 3,
  Est = 4,
  Fin = 5,
  FinAck = 6,
  Error = 7,
};

/// Wire error codes carried by Error frames.
enum class ErrorCode : std::uint16_t {
  VersionMismatch = 1,  ///< Hello.version != kProtocolVersion
  BadVariables = 2,     ///< Hello variable declaration != model domain
  BadModel = 3,         ///< Hello names a model this server does not serve
  Protocol = 4,         ///< malformed frame or frame out of sequence
  Busy = 5,             ///< session cap reached, try another replica
  Draining = 6,         ///< server is draining; finish elsewhere
  IdleTimeout = 7,      ///< no bytes from the client within the deadline
  Oversized = 8,        ///< frame payload exceeded the negotiated cap
  Internal = 9,         ///< predictor failure; see message
};

const char* errorCodeName(ErrorCode code);

/// Per-row flags in an Est frame (bitwise OR).
inline constexpr std::uint8_t kEstFlagLost = 0x1;
inline constexpr std::uint8_t kEstFlagWrongPrediction = 0x2;
inline constexpr std::uint8_t kEstFlagUnexpected = 0x4;
inline constexpr std::uint8_t kEstFlagResync = 0x8;

/// Raised by every decode helper on malformed bytes. `code` is the wire
/// error a server should answer with before closing.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

struct HelloRequest {
  std::uint32_t version = kProtocolVersion;
  /// Model the client expects to talk to; empty accepts whatever the
  /// server serves.
  std::string model_id;
  /// "name:kind:width,..." — must equal the served model's declaration.
  std::string variables;

  bool operator==(const HelloRequest&) const = default;
};

struct HelloReply {
  std::uint32_t version = kProtocolVersion;
  std::string model_id;
  std::uint32_t psm_format_version = 0;
  std::uint32_t states = 0;
  std::uint32_t transitions = 0;
  std::string variables;

  bool operator==(const HelloReply&) const = default;
};

struct EstRow {
  double estimate = 0.0;
  std::uint8_t flags = 0;

  bool operator==(const EstRow&) const = default;
};

struct FinSummary {
  std::uint64_t rows = 0;
  std::uint64_t predictions = 0;
  std::uint64_t wrong_predictions = 0;
  std::uint64_t unexpected_behaviours = 0;
  std::uint64_t lost_instants = 0;
  std::uint64_t resyncs = 0;
  /// runtime::DriftStatus as an integer (0 Ok / 1 Degraded / 2 Drifted).
  std::uint8_t drift_status = 0;

  bool operator==(const FinSummary&) const = default;
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::Internal;
  std::string message;

  bool operator==(const ErrorFrame&) const = default;
};

// --- frame encoding (header + payload, ready for send()) ---------------

std::string encodeFrame(FrameType type, const std::uint8_t* payload,
                        std::size_t size);
std::string encodeHello(const HelloRequest& hello);
std::string encodeHelloOk(const HelloReply& reply);
std::string encodeRows(const std::vector<std::vector<common::BitVector>>& rows);
std::string encodeEst(const std::vector<EstRow>& rows);
std::string encodeFin();
std::string encodeFinAck(const FinSummary& summary);
std::string encodeError(const ErrorFrame& error);

// --- payload decoding ---------------------------------------------------

HelloRequest decodeHello(const std::vector<std::uint8_t>& payload);
HelloReply decodeHelloOk(const std::vector<std::uint8_t>& payload);
/// Rows are decoded against the served model's variable set (widths fix
/// the per-row byte layout). Throws ProtocolError on any inconsistency.
std::vector<std::vector<common::BitVector>> decodeRows(
    const std::vector<std::uint8_t>& payload, const trace::VariableSet& vars);
std::vector<EstRow> decodeEst(const std::vector<std::uint8_t>& payload);
FinSummary decodeFinAck(const std::vector<std::uint8_t>& payload);
ErrorFrame decodeError(const std::vector<std::uint8_t>& payload);

/// Incremental frame splitter: feed() raw socket bytes in any
/// granularity, next() pops complete frames. A frame claiming a payload
/// above `max_payload` or an unknown frame type throws ProtocolError the
/// moment the header is readable — before any payload is buffered.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(const void* data, std::size_t size);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace psmgen::serve
