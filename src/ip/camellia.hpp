#pragma once
// Iterative Camellia-128 encryption/decryption core (RFC 3713).
//
// Matches the paper's Camellia benchmark interface: 262 primary input
// bits, 129 primary output bits. One Feistel round (or FL/FL~ layer) per
// clock cycle: 18 rounds + 2 FL layers + output = 21 busy cycles.
//
// Ports:
//   in  rst      1
//   in  en       1
//   in  krdy     1    latch a new cipher key (runs the key schedule)
//   in  drdy     1    begin processing `din` with the latched key
//   in  decrypt  1
//   in  flush    1    clear data path registers (not the key)
//   in  kin    128
//   in  din    128
//   out done     1
//   out dout   128
//
// Camellia is the paper's example of an IP whose *subcomponents* (Feistel
// datapath, FL layer, key-schedule/subkey pipeline) expose power
// behaviours that are poorly correlated with what is visible at the
// primary I/Os; the per-round subkey register (which jumps between
// rotations of KL and KA) reproduces that effect.

#include <array>
#include <cstdint>

#include "rtl/device.hpp"

namespace psmgen::ip {

namespace camellia {

/// F-function of Camellia (S-boxes + P permutation).
std::uint64_t F(std::uint64_t x, std::uint64_t k);
/// FL / FL-inverse layers.
std::uint64_t FL(std::uint64_t x, std::uint64_t k);
std::uint64_t FLinv(std::uint64_t y, std::uint64_t k);

struct KeySchedule {
  std::uint64_t kw[4];   ///< whitening keys
  std::uint64_t k[18];   ///< round keys
  std::uint64_t ke[4];   ///< FL-layer keys
};

/// 128-bit key schedule; key given as (left, right) 64-bit halves.
KeySchedule expandKey(std::uint64_t kl_hi, std::uint64_t kl_lo);

/// Whole-block reference implementations (big-endian halves).
void encryptBlock(std::uint64_t in[2], std::uint64_t out[2],
                  const KeySchedule& ks);
void decryptBlock(std::uint64_t in[2], std::uint64_t out[2],
                  const KeySchedule& ks);

}  // namespace camellia

class CamelliaIP final : public rtl::DeviceBase {
 public:
  CamelliaIP();

  void reset() override;
  std::size_t sourceLines() const override { return 1676; }

  enum Input { kRst = 0, kEn, kKrdy, kDrdy, kDecrypt, kFlush, kKin, kDin };
  enum Output { kDone = 0, kDout };

  /// Busy cycles per block: 18 rounds + 2 FL layers + output cycle.
  static constexpr std::size_t kLatency = 21;

 protected:
  void evaluate(const rtl::PortValues& in, rtl::PortValues& out) override;

 private:
  common::BitVector pack128(std::uint64_t hi, std::uint64_t lo) const;

  rtl::Register& d1_;       ///< Feistel left half
  rtl::Register& d2_;       ///< Feistel right half
  rtl::Register& kl_;       ///< cipher key KL
  rtl::Register& ka_;       ///< derived key KA
  rtl::Register& subkey_;   ///< current round subkey (key-schedule pipeline)
  rtl::Register& fl_unit_;  ///< FL-layer working register (sub-block)
  rtl::Register& out_reg_;
  rtl::Register& round_ctr_;
  rtl::Register& busy_;
  rtl::Register& done_;
  rtl::Register& dec_;
  rtl::Register& key_valid_;

  camellia::KeySchedule ks_{};  ///< combinational view of the schedule
  /// Sink for the always-evaluated combinational cone (see evaluate()).
  unsigned comb_sink_ = 0;
};

}  // namespace psmgen::ip
