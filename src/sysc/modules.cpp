#include "sysc/modules.hpp"

namespace psmgen::sysc {

IpModule::IpModule(rtl::Device& device, rtl::Stimulus& stimulus,
                   Signal<PortRow>& out)
    : Module(device.name() + "_ip"), device_(device), stimulus_(stimulus),
      out_(out) {}

void IpModule::onReset() {
  device_.reset();
  stimulus_.restart();
}

void IpModule::onClock(std::size_t cycle) {
  const rtl::PortValues in = stimulus_.next(cycle);
  device_.tick(in, outputs_);
  PortRow row;
  row.reserve(in.size() + outputs_.size());
  row.insert(row.end(), in.begin(), in.end());
  row.insert(row.end(), outputs_.begin(), outputs_.end());
  out_.write(std::move(row));
}

PsmModule::PsmModule(const core::PsmSimulator& simulator,
                     const Signal<PortRow>& ports, Signal<double>& power_w)
    : Module("psm_power_model"), simulator_(simulator), ports_(ports),
      power_w_(power_w) {}

void PsmModule::onReset() {
  session_ = std::make_unique<core::PsmSimulator::Session>(
      simulator_.startSession());
  total_ = 0.0;
  cycles_ = 0;
}

void PsmModule::onClock(std::size_t) {
  const PortRow& row = ports_.read();
  if (row.empty()) return;  // IP has not produced its first values yet
  const double watts = session_->step(row);
  power_w_.write(watts);
  total_ += watts;
  ++cycles_;
}

}  // namespace psmgen::sysc
