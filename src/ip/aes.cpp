#include "ip/aes.hpp"

namespace psmgen::ip {
namespace aes {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

void subBytes(Block& s) {
  for (auto& b : s) b = kSbox[b];
}

void invSubBytes(Block& s) {
  for (auto& b : s) b = kInvSbox[b];
}

// State layout: s[r + 4*c] (column-major, FIPS-197).
void shiftRows(Block& s) {
  Block t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
    }
  }
}

void invShiftRows(Block& s) {
  Block t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
    }
  }
}

void mixColumns(Block& s) {
  for (int c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
                       a3 = s[4 * c + 3];
    s[4 * c + 0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    s[4 * c + 1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    s[4 * c + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    s[4 * c + 3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void invMixColumns(Block& s) {
  for (int c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
                       a3 = s[4 * c + 3];
    s[4 * c + 0] = static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^
                                             gmul(a2, 0x0d) ^ gmul(a3, 0x09));
    s[4 * c + 1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^
                                             gmul(a2, 0x0b) ^ gmul(a3, 0x0d));
    s[4 * c + 2] = static_cast<std::uint8_t>(gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^
                                             gmul(a2, 0x0e) ^ gmul(a3, 0x0b));
    s[4 * c + 3] = static_cast<std::uint8_t>(gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^
                                             gmul(a2, 0x09) ^ gmul(a3, 0x0e));
  }
}

void addRoundKey(Block& s, const Block& rk) {
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(s[i] ^ rk[i]);
}

Block nextRoundKey(const Block& rk, int round) {
  Block out{};
  // temp = SubWord(RotWord(w3)) ^ rcon
  std::uint8_t t0 = static_cast<std::uint8_t>(kSbox[rk[13]] ^ kRcon[round]);
  std::uint8_t t1 = kSbox[rk[14]];
  std::uint8_t t2 = kSbox[rk[15]];
  std::uint8_t t3 = kSbox[rk[12]];
  out[0] = static_cast<std::uint8_t>(rk[0] ^ t0);
  out[1] = static_cast<std::uint8_t>(rk[1] ^ t1);
  out[2] = static_cast<std::uint8_t>(rk[2] ^ t2);
  out[3] = static_cast<std::uint8_t>(rk[3] ^ t3);
  for (int i = 4; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(rk[i] ^ out[i - 4]);
  }
  return out;
}

Block prevRoundKey(const Block& rk, int round) {
  Block out{};
  for (int i = 15; i >= 4; --i) {
    out[i] = static_cast<std::uint8_t>(rk[i] ^ rk[i - 4]);
  }
  // out[12..15] is the previous w3; undo the g transformation for w0.
  std::uint8_t t0 = static_cast<std::uint8_t>(kSbox[out[13]] ^ kRcon[round]);
  std::uint8_t t1 = kSbox[out[14]];
  std::uint8_t t2 = kSbox[out[15]];
  std::uint8_t t3 = kSbox[out[12]];
  out[0] = static_cast<std::uint8_t>(rk[0] ^ t0);
  out[1] = static_cast<std::uint8_t>(rk[1] ^ t1);
  out[2] = static_cast<std::uint8_t>(rk[2] ^ t2);
  out[3] = static_cast<std::uint8_t>(rk[3] ^ t3);
  return out;
}

Block finalRoundKey(const Block& key) {
  Block rk = key;
  for (int round = 1; round <= 10; ++round) rk = nextRoundKey(rk, round);
  return rk;
}

Block encryptBlock(const Block& plaintext, const Block& key) {
  Block s = plaintext;
  Block rk = key;
  addRoundKey(s, rk);
  for (int round = 1; round <= 9; ++round) {
    rk = nextRoundKey(rk, round);
    subBytes(s);
    shiftRows(s);
    mixColumns(s);
    addRoundKey(s, rk);
  }
  rk = nextRoundKey(rk, 10);
  subBytes(s);
  shiftRows(s);
  addRoundKey(s, rk);
  return s;
}

Block decryptBlock(const Block& ciphertext, const Block& key) {
  Block s = ciphertext;
  Block rk = finalRoundKey(key);
  addRoundKey(s, rk);
  for (int round = 10; round >= 2; --round) {
    rk = prevRoundKey(rk, round);
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, rk);
    invMixColumns(s);
  }
  rk = prevRoundKey(rk, 1);
  invShiftRows(s);
  invSubBytes(s);
  addRoundKey(s, rk);
  return s;
}

Block toBlock(const common::BitVector& v) {
  Block b{};
  for (int i = 0; i < 16; ++i) {
    std::uint8_t byte = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (v.bit(static_cast<unsigned>((15 - i) * 8 + bit))) {
        byte |= static_cast<std::uint8_t>(1u << bit);
      }
    }
    b[i] = byte;
  }
  return b;
}

common::BitVector fromBlock(const Block& b) {
  common::BitVector v(128);
  for (int i = 0; i < 16; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      if ((b[i] >> bit) & 1u) v.setBit(static_cast<unsigned>((15 - i) * 8 + bit), true);
    }
  }
  return v;
}

}  // namespace aes

AesIP::AesIP()
    : rtl::DeviceBase("AES"),
      state_(addRegister("state", 128)),
      round_key_(addRegister("rk", 128)),
      out_reg_(addRegister("out_reg", 128)),
      round_ctr_(addRegister("round", 5)),
      busy_(addRegister("busy", 1)),
      done_(addRegister("done", 1)),
      dec_(addRegister("dec", 1)) {
  addInput("rst", 1);
  addInput("en", 1);
  addInput("start", 1);
  addInput("decrypt", 1);
  addInput("key", 128);
  addInput("data", 128);
  addOutput("done", 1);
  addOutput("result", 128);
}

void AesIP::reset() {
  state_.clear();
  round_key_.clear();
  out_reg_.clear();
  round_ctr_.clear();
  busy_.clear();
  done_.clear();
  dec_.clear();
}

void AesIP::evaluate(const rtl::PortValues& in, rtl::PortValues& out) {
  if (in[kRst].bit(0)) {
    reset();
    out[kResult] = out_reg_.value();
    return;
  }
  // Flattened RTL evaluates its combinational cone every cycle regardless
  // of the FSM state (HIFSuite-style SystemC models do the same): the
  // round function below is computed unconditionally and the registers
  // only latch its result when the FSM says so.
  {
    aes::Block comb = aes::toBlock(state_.value());
    aes::Block comb_rk = aes::toBlock(round_key_.value());
    comb_rk = aes::nextRoundKey(comb_rk, 1);
    aes::subBytes(comb);
    aes::shiftRows(comb);
    aes::mixColumns(comb);
    aes::addRoundKey(comb, comb_rk);
    comb_sink_ = comb[0];
  }
  if (in[kEn].bit(0)) {
    done_.set(common::BitVector(1, 0));
    if (busy_.value().bit(0)) {
      const unsigned round = static_cast<unsigned>(round_ctr_.value().toUint64());
      aes::Block s = aes::toBlock(state_.value());
      aes::Block rk = aes::toBlock(round_key_.value());
      if (!dec_.value().bit(0)) {
        rk = aes::nextRoundKey(rk, static_cast<int>(round));
        aes::subBytes(s);
        aes::shiftRows(s);
        if (round < 10) aes::mixColumns(s);
        aes::addRoundKey(s, rk);
      } else {
        // InvCipher round with on-the-fly reverse key schedule: the
        // round key walks 10 -> 0, consumed in descending order.
        rk = aes::prevRoundKey(rk, static_cast<int>(11 - round));
        aes::invShiftRows(s);
        aes::invSubBytes(s);
        aes::addRoundKey(s, rk);
        if (round < 10) aes::invMixColumns(s);
      }
      state_.set(aes::fromBlock(s));
      round_key_.set(aes::fromBlock(rk));
      if (round == 10) {
        out_reg_.set(aes::fromBlock(s));
        busy_.set(common::BitVector(1, 0));
        done_.set(common::BitVector(1, 1));
        round_ctr_.clear();
      } else {
        round_ctr_.set(common::BitVector(5, round + 1));
      }
    } else if (in[kStart].bit(0)) {
      aes::Block data = aes::toBlock(in[kData]);
      aes::Block key = aes::toBlock(in[kKey]);
      const bool dec = in[kDecrypt].bit(0);
      const aes::Block rk0 = dec ? aes::finalRoundKey(key) : key;
      aes::addRoundKey(data, rk0);
      state_.set(aes::fromBlock(data));
      round_key_.set(aes::fromBlock(rk0));
      dec_.set(common::BitVector(1, dec));
      busy_.set(common::BitVector(1, 1));
      round_ctr_.set(common::BitVector(5, 1));
    }
  }
  out[kDone] = done_.value();
  out[kResult] = out_reg_.value();
}

}  // namespace psmgen::ip
