#include "obs/exposition.hpp"

#include <cinttypes>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace psmgen::obs {

namespace {

void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void appendCount(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// Escapes a HELP text: backslash and newline (the spec's two HELP
/// escapes; quotes are legal there unescaped).
void appendHelpText(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

/// Pre-rendered `{k="v",...}` block from the const labels; empty string
/// when there are none. Histogram buckets splice their `le` in instead.
std::string renderLabelBlock(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    out += sanitizeMetricName(k);
    out += "=\"";
    out += escapeLabelValue(v);
    out += '"';
    first = false;
  }
  out += '}';
  return out;
}

/// `le` gets appended after the const labels (order inside the block is
/// free in the text format).
std::string renderBucketLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += sanitizeMetricName(k);
    out += "=\"";
    out += escapeLabelValue(v);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

/// The most recent exemplar with value in (`lower`, `upper`]; nullptr
/// when none lands in that bucket. `exemplars` is oldest-first.
const Exemplar* newestExemplarIn(const std::vector<Exemplar>& exemplars,
                                 double lower, double upper) {
  const Exemplar* found = nullptr;
  for (const Exemplar& e : exemplars) {
    if (e.value > lower && e.value <= upper) found = &e;
  }
  return found;
}

/// OpenMetrics exemplar suffix: ` # {event_id="N"} value ts_seconds`;
/// the timestamp is the exemplar's Unix wall-clock stamp in seconds,
/// printed in fixed point — %g's 9 significant digits would round a
/// 2020s epoch to ~10-second granularity.
void appendExemplar(std::string& out, const Exemplar& exemplar) {
  out += " # {event_id=\"";
  appendCount(out, exemplar.event_id);
  out += "\"} ";
  appendNumber(out, exemplar.value);
  char buf[40];
  std::snprintf(buf, sizeof(buf), " %.3f",
                static_cast<double>(exemplar.ts_us) / 1e6);
  out += buf;
}

void appendFamilyHeader(std::string& out, const std::string& name,
                        std::string_view dotted, const char* type) {
  out += "# HELP " + name + " psmgen registry instrument ";
  appendHelpText(out, dotted);
  out += '\n';
  out += "# TYPE " + name + ' ';
  out += type;
  out += '\n';
}

}  // namespace

const std::vector<double>& defaultBuckets() {
  static const std::vector<double> kBuckets = {
      0.5,  1.0,   2.5,   5.0,   10.0,   25.0,   50.0,
      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return kBuckets;
}

std::string sanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

std::string_view trimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool equalsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

/// The media range's quality weight: its `q` parameter clamped to
/// [0, 1], defaulting to 1 when absent or unparsable.
double mediaRangeQuality(std::string_view params) {
  double q = 1.0;
  while (!params.empty()) {
    const std::size_t semi = params.find(';');
    std::string_view param = trimSpace(
        params.substr(0, semi == std::string_view::npos ? params.size()
                                                        : semi));
    params = semi == std::string_view::npos ? std::string_view{}
                                            : params.substr(semi + 1);
    if (param.size() < 2) continue;
    if ((param[0] != 'q' && param[0] != 'Q') || param[1] != '=') continue;
    const std::string value(param.substr(2));
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;
    q = parsed < 0.0 ? 0.0 : (parsed > 1.0 ? 1.0 : parsed);
  }
  return q;
}

}  // namespace

bool acceptsOpenMetrics(std::string_view accept_header) {
  // Highest q among ranges naming OpenMetrics *exactly* vs. highest q
  // among ranges the classic 0.0.4 format satisfies. Wildcards count
  // only on the classic side: a client saying `*/*` is happy with
  // either, and classic is the safer default for generic scrapers.
  double openmetrics_q = -1.0;
  double classic_q = -1.0;
  std::string_view rest = accept_header;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(
        0, comma == std::string_view::npos ? rest.size() : comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t semi = entry.find(';');
    const std::string_view type = trimSpace(
        entry.substr(0, semi == std::string_view::npos ? entry.size()
                                                       : semi));
    const std::string_view params =
        semi == std::string_view::npos ? std::string_view{}
                                       : entry.substr(semi + 1);
    if (type.empty()) continue;
    const double q = mediaRangeQuality(params);
    if (equalsIgnoreCase(type, "application/openmetrics-text")) {
      if (q > openmetrics_q) openmetrics_q = q;
    } else if (equalsIgnoreCase(type, "text/plain") ||
               equalsIgnoreCase(type, "text/*") ||
               equalsIgnoreCase(type, "*/*") ||
               equalsIgnoreCase(type, "application/*")) {
      if (q > classic_q) classic_q = q;
    }
  }
  // OpenMetrics only when the client named it, with q > 0, at least as
  // preferred as any range classic text satisfies.
  return openmetrics_q > 0.0 && openmetrics_q >= classic_q;
}

void writePrometheus(std::ostream& os, const Registry& registry,
                     const PrometheusOptions& options) {
  const std::vector<double>& bounds =
      options.buckets.empty() ? defaultBuckets() : options.buckets;
  const RegistrySnapshot snap = registry.snapshot(bounds);
  const std::string labels = renderLabelBlock(options.const_labels);
  // Exemplar syntax exists only in OpenMetrics; a 0.0.4 scrape must
  // never contain it or the whole scrape fails to parse.
  const bool exemplars = options.openmetrics && options.exemplars;

  std::string out;
  out.reserve(4096);
  for (const auto& [dotted, value] : snap.counters) {
    const std::string family = options.prefix + sanitizeMetricName(dotted);
    const std::string name = family + "_total";
    // OpenMetrics names the counter *family* without the `_total`
    // suffix and derives the sample name from it; 0.0.4 declares the
    // suffixed sample name directly.
    appendFamilyHeader(out, options.openmetrics ? family : name, dotted,
                       "counter");
    out += name + labels + ' ';
    appendCount(out, value);
    out += '\n';
  }
  for (const auto& [dotted, value] : snap.gauges) {
    const std::string name = options.prefix + sanitizeMetricName(dotted);
    appendFamilyHeader(out, name, dotted, "gauge");
    out += name + labels + ' ';
    appendNumber(out, value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string name = options.prefix + sanitizeMetricName(h.name);
    appendFamilyHeader(out, name, h.name, "histogram");
    double lower = -std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      std::string le;
      appendNumber(le, bounds[b]);
      out += name + "_bucket" + renderBucketLabels(options.const_labels, le) +
             ' ';
      appendCount(out, h.cumulative[b]);
      if (exemplars) {
        const Exemplar* e = newestExemplarIn(h.exemplars, lower, bounds[b]);
        if (e != nullptr) appendExemplar(out, *e);
      }
      out += '\n';
      lower = bounds[b];
    }
    out += name + "_bucket" + renderBucketLabels(options.const_labels, "+Inf") +
           ' ';
    appendCount(out, h.stats.count);
    if (exemplars) {
      const Exemplar* e = newestExemplarIn(
          h.exemplars, lower, std::numeric_limits<double>::infinity());
      if (e != nullptr) appendExemplar(out, *e);
    }
    out += '\n';
    out += name + "_sum" + labels + ' ';
    appendNumber(out, h.stats.sum);
    out += '\n';
    out += name + "_count" + labels + ' ';
    appendCount(out, h.stats.count);
    out += '\n';
  }
  if (options.openmetrics) out += "# EOF\n";
  os << out;
}

std::string renderPrometheus(const Registry& registry,
                             const PrometheusOptions& options) {
  std::ostringstream os;
  writePrometheus(os, registry, options);
  return os.str();
}

}  // namespace psmgen::obs
