file(REMOVE_RECURSE
  "CMakeFiles/psmgen_trace.dir/functional_trace.cpp.o"
  "CMakeFiles/psmgen_trace.dir/functional_trace.cpp.o.d"
  "CMakeFiles/psmgen_trace.dir/power_trace.cpp.o"
  "CMakeFiles/psmgen_trace.dir/power_trace.cpp.o.d"
  "CMakeFiles/psmgen_trace.dir/trace_io.cpp.o"
  "CMakeFiles/psmgen_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/psmgen_trace.dir/variable.cpp.o"
  "CMakeFiles/psmgen_trace.dir/variable.cpp.o.d"
  "CMakeFiles/psmgen_trace.dir/vcd_writer.cpp.o"
  "CMakeFiles/psmgen_trace.dir/vcd_writer.cpp.o.d"
  "libpsmgen_trace.a"
  "libpsmgen_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmgen_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
