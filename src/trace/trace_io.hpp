#pragma once
// CSV persistence for functional and power traces.
//
// Functional trace format:
//   # psmgen functional trace v1
//   name:kind:width,name:kind:width,...
//   <hex>,<hex>,...            (one row per instant, MSB-first hex values)
//
// Power trace format:
//   # psmgen power trace v1
//   vdd,clock_hz,cap_per_bit
//   <sample>                   (one double per line)

#include <iosfwd>
#include <string>

#include "trace/functional_trace.hpp"
#include "trace/power_trace.hpp"

namespace psmgen::trace {

void writeFunctionalTrace(std::ostream& os, const FunctionalTrace& trace);
FunctionalTrace readFunctionalTrace(std::istream& is);

void writePowerTrace(std::ostream& os, const PowerTrace& trace);
PowerTrace readPowerTrace(std::istream& is);

/// File-path convenience wrappers; throw std::runtime_error on I/O failure.
void saveFunctionalTrace(const std::string& path, const FunctionalTrace& trace);
FunctionalTrace loadFunctionalTrace(const std::string& path);
void savePowerTrace(const std::string& path, const PowerTrace& trace);
PowerTrace loadPowerTrace(const std::string& path);

}  // namespace psmgen::trace
