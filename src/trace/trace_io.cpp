#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"

namespace psmgen::trace {

namespace {
const std::string kFunctionalHeader = "# psmgen functional trace v1";
const std::string kPowerHeader = "# psmgen power trace v1";

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace_io: line " + std::to_string(line_no) + ": " +
                           what);
}

VarKind parseKind(const std::string& s, std::size_t line_no) {
  if (s == "in") return VarKind::Input;
  if (s == "out") return VarKind::Output;
  fail(line_no, "bad variable kind: " + s);
}

std::string kindName(VarKind k) {
  return k == VarKind::Input ? "in" : "out";
}

double parseDouble(const std::string& s, std::size_t line_no,
                   const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) fail(line_no, "bad " + what + ": " + s);
    return v;
  } catch (const std::logic_error&) {
    fail(line_no, "bad " + what + ": " + s);
  }
}
}  // namespace

const std::string& functionalTraceHeader() { return kFunctionalHeader; }

std::string formatVariableDeclaration(const VariableSet& vars) {
  std::vector<std::string> cols;
  cols.reserve(vars.size());
  for (const auto& v : vars.all()) {
    cols.push_back(v.name + ":" + kindName(v.kind) + ":" +
                   std::to_string(v.width));
  }
  return common::join(cols, ",");
}
const std::string& powerTraceHeader() { return kPowerHeader; }

VariableSet parseVariableDeclaration(const std::string& line,
                                     std::size_t line_no) {
  VariableSet vars;
  for (const auto& col : common::split(common::trim(line), ',')) {
    const auto fields = common::split(col, ':');
    if (fields.size() != 3) {
      fail(line_no, "bad variable declaration: " + col);
    }
    unsigned width = 0;
    try {
      std::size_t consumed = 0;
      width = static_cast<unsigned>(std::stoul(fields[2], &consumed));
      if (consumed != fields[2].size() || width == 0) throw std::range_error("");
    } catch (const std::logic_error&) {
      fail(line_no, "bad variable width: " + col);
    }
    try {
      vars.add(fields[0], width, parseKind(fields[1], line_no));
    } catch (const std::invalid_argument& e) {
      fail(line_no, e.what());
    }
  }
  return vars;
}

std::vector<common::BitVector> parseFunctionalRow(const std::string& line,
                                                  const VariableSet& vars,
                                                  std::size_t line_no) {
  const auto cells = common::split(line, ',');
  if (cells.size() != vars.size()) {
    fail(line_no, "row arity mismatch (got " + std::to_string(cells.size()) +
                      " cells, expected " + std::to_string(vars.size()) + ")");
  }
  std::vector<common::BitVector> row;
  row.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    try {
      row.push_back(common::BitVector::fromHex(cells[i], vars[i].width));
    } catch (const std::exception& e) {
      fail(line_no, "bad value for variable '" + vars[i].name +
                        "': " + e.what());
    }
  }
  return row;
}

void writeFunctionalTrace(std::ostream& os, const FunctionalTrace& trace) {
  os << kFunctionalHeader << "\n";
  os << formatVariableDeclaration(trace.variables()) << "\n";
  for (std::size_t t = 0; t < trace.length(); ++t) {
    std::vector<std::string> cells;
    for (const auto& value : trace.step(t)) cells.push_back(value.toHex());
    os << common::join(cells, ",") << "\n";
  }
}

FunctionalTrace readFunctionalTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || common::trim(line) != kFunctionalHeader) {
    throw std::runtime_error("trace_io: missing functional trace header");
  }
  if (!std::getline(is, line)) {
    throw std::runtime_error(
        "trace_io: truncated trace: missing variable declaration line");
  }
  FunctionalTrace trace(parseVariableDeclaration(line, 2));
  std::size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = common::trim(line);
    if (t.empty()) continue;
    trace.append(parseFunctionalRow(t, trace.variables(), line_no));
  }
  return trace;
}

void writePowerTrace(std::ostream& os, const PowerTrace& trace) {
  os << kPowerHeader << "\n";
  os.precision(17);
  os << trace.params().vdd << "," << trace.params().clock_hz << ","
     << trace.params().cap_per_bit << "\n";
  for (const double s : trace.samples()) os << s << "\n";
}

PowerTrace readPowerTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || common::trim(line) != kPowerHeader) {
    throw std::runtime_error("trace_io: missing power trace header");
  }
  if (!std::getline(is, line)) {
    throw std::runtime_error(
        "trace_io: truncated trace: missing power parameter line");
  }
  const auto fields = common::split(common::trim(line), ',');
  if (fields.size() != 3) {
    fail(2, "bad power parameter line (got " + std::to_string(fields.size()) +
                " fields, expected 3)");
  }
  PowerParams params;
  params.vdd = parseDouble(fields[0], 2, "vdd");
  params.clock_hz = parseDouble(fields[1], 2, "clock frequency");
  params.cap_per_bit = parseDouble(fields[2], 2, "capacitance");
  PowerTrace trace(params);
  std::size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = common::trim(line);
    if (t.empty()) continue;
    trace.append(parseDouble(t, line_no, "power sample"));
  }
  return trace;
}

void saveFunctionalTrace(const std::string& path, const FunctionalTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  writeFunctionalTrace(os, trace);
}

FunctionalTrace loadFunctionalTrace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return readFunctionalTrace(is);
}

void savePowerTrace(const std::string& path, const PowerTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  writePowerTrace(os, trace);
}

PowerTrace loadPowerTrace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return readPowerTrace(is);
}

}  // namespace psmgen::trace
