// Property-based tests: invariants of the mining -> generation -> merge
// pipeline over randomized mode traces (parameterized by seed).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/flow.hpp"
#include "core/generator.hpp"
#include "core/miner.hpp"
#include "core/xu_automaton.hpp"

namespace psmgen::core {
namespace {

using common::BitVector;

trace::VariableSet propVars() {
  trace::VariableSet vars;
  vars.add("m", 3, trace::VarKind::Input);
  return vars;
}

/// A random trace of mode runs: values 0..4, run lengths 1..12.
trace::FunctionalTrace randomModeTrace(std::uint64_t seed, std::size_t ops) {
  common::Rng rng(seed);
  trace::FunctionalTrace t(propVars());
  unsigned prev = 99;
  for (std::size_t i = 0; i < ops; ++i) {
    unsigned mode = 0;
    do {
      mode = static_cast<unsigned>(rng.uniform(5));
    } while (mode == prev);  // consecutive runs differ
    prev = mode;
    const std::size_t len = 1 + rng.uniform(12);
    for (std::size_t k = 0; k < len; ++k) t.append({BitVector(3, mode)});
  }
  return t;
}

trace::PowerTrace randomPower(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed * 31 + 1);
  trace::PowerTrace p;
  for (std::size_t i = 0; i < n; ++i) p.append(1.0 + rng.uniformReal());
  return p;
}

MinerConfig permissive() {
  MinerConfig cfg;
  cfg.max_toggle_rate = 1.0;
  cfg.max_singleton_run_fraction = 1.0;
  return cfg;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, XuAssertionsPartitionTheTrace) {
  const auto t = randomModeTrace(GetParam(), 40);
  AssertionMiner miner(permissive());
  PropositionDomain domain = miner.buildDomain({&t});
  const PropositionTrace gamma = AssertionMiner::tracePropositions(domain, t);
  XuAutomaton xu(gamma);
  std::size_t covered_until = 0;
  std::size_t last_stop = 0;
  bool first = true;
  while (const auto mined = xu.next()) {
    // Intervals are contiguous and ordered.
    if (first) {
      EXPECT_EQ(mined->start, 0u);
      first = false;
    } else {
      EXPECT_EQ(mined->start, last_stop + 1);
    }
    EXPECT_LE(mined->start, mined->stop);
    // The state's proposition holds over the whole interval; the exit
    // proposition is different and holds right after.
    for (std::size_t i = mined->start; i <= mined->stop; ++i) {
      EXPECT_EQ(gamma.at(i), mined->pattern.p);
    }
    if (mined->pattern.q != kNoProp) {
      EXPECT_EQ(gamma.at(mined->stop + 1), mined->pattern.q);
      EXPECT_NE(mined->pattern.p, mined->pattern.q);
    }
    // next-patterns span exactly one instant (Sec. IV-A Case 1).
    if (!mined->pattern.is_until) {
      EXPECT_EQ(mined->start, mined->stop);
    }
    last_stop = mined->stop;
    covered_until = mined->stop + 1;
  }
  // Everything except possibly the final dangling proposition is covered.
  EXPECT_GE(covered_until + 12, gamma.length());
}

TEST_P(PipelineProperty, GeneratedChainInvariants) {
  const auto t = randomModeTrace(GetParam() + 1000, 40);
  const auto p = randomPower(GetParam(), t.length());
  AssertionMiner miner(permissive());
  PropositionDomain domain = miner.buildDomain({&t});
  const PropositionTrace gamma = AssertionMiner::tracePropositions(domain, t);
  const Psm psm = PsmGenerator::generate(gamma, p, 0);
  psm.validate();
  EXPECT_TRUE(psm.isChain());
  ASSERT_GE(psm.stateCount(), 1u);
  EXPECT_EQ(psm.transitionCount(), psm.stateCount() - 1);
  // Sample counts never exceed the trace length and sum close to it.
  std::size_t total_n = 0;
  for (const auto& s : psm.states()) {
    EXPECT_GE(s.power.n, 1u);
    total_n += s.power.n;
  }
  EXPECT_LE(total_n, t.length());
  // Each transition's enabling is the exit proposition of its source.
  for (const auto& tr : psm.transitions()) {
    EXPECT_EQ(tr.enabling,
              StateAssertion::exitProp(
                  psm.state(tr.from).assertion.alts.front()));
  }
}

TEST_P(PipelineProperty, SimplifyAndJoinPreserveSampleMass) {
  std::vector<Psm> chains;
  std::size_t total_before = 0;
  std::vector<trace::FunctionalTrace> traces;
  for (int k = 0; k < 3; ++k) {
    traces.push_back(randomModeTrace(GetParam() * 7 + k, 30));
  }
  std::vector<const trace::FunctionalTrace*> views;
  for (const auto& tr : traces) views.push_back(&tr);
  AssertionMiner miner(permissive());
  PropositionDomain domain = miner.buildDomain(views);
  MergePolicy pol;
  for (int k = 0; k < 3; ++k) {
    const PropositionTrace gamma =
        AssertionMiner::tracePropositions(domain, traces[k]);
    Psm chain =
        PsmGenerator::generate(gamma, randomPower(k + 5, traces[k].length()), k);
    for (const auto& s : chain.states()) total_before += s.power.n;
    simplify(chain, pol);
    std::size_t after_simplify = 0;
    for (const auto& s : chain.states()) after_simplify += s.power.n;
    chains.push_back(std::move(chain));
  }
  const Psm joined = join(chains, pol);
  joined.validate();
  std::size_t total_after = 0;
  std::size_t alts = 0;
  for (const auto& s : joined.states()) {
    total_after += s.power.n;
    alts += s.assertion.alts.size();
    // Interval lengths are consistent with the sample count.
    std::size_t interval_n = 0;
    for (const auto& iv : s.intervals) interval_n += iv.length();
    EXPECT_EQ(interval_n, s.power.n);
  }
  EXPECT_EQ(total_after, total_before);
  EXPECT_GE(alts, joined.stateCount());
  // Initial-state multiplicities account for all three chains.
  std::size_t initials = 0;
  for (const auto& s : joined.states()) initials += s.initial_count;
  EXPECT_EQ(initials, 3u);
}

TEST_P(PipelineProperty, TrainingReplayNeverLosesSync) {
  FlowConfig cfg;
  cfg.miner = permissive();
  CharacterizationFlow flow(cfg);
  std::vector<trace::FunctionalTrace> traces;
  for (int k = 0; k < 3; ++k) {
    traces.push_back(randomModeTrace(GetParam() * 13 + k, 30));
    flow.addTrainingTrace(traces.back(),
                          randomPower(k + 17, traces.back().length()));
  }
  flow.build();
  for (const auto& t : traces) {
    const SimResult r = flow.estimate(t);
    EXPECT_EQ(r.lost_instants, 0u) << "seed " << GetParam();
    // Training behaviour is always recognisable again: at most a bounded
    // number of reinterpretation events may fail when an ambiguity chain
    // exceeds the simulator's bounded backtracking (see
    // SimOptions/Checkpoint); it must never snowball.
    EXPECT_LE(r.unexpected_behaviours + r.wrong_predictions, 1u)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace psmgen::core
