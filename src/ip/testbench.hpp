#pragma once
// Per-IP stimulus generators.
//
// The paper uses two training testsets (Sec. VI):
//   - short-TS: the test sequences written for functional verification of
//     each IP (directed operation scripts covering the IP's behaviours),
//   - long-TS: a much longer testset that exercises the IP's functionality
//     many times with different data (constrained-random operation mix).
//
// Each testbench emits whole *operations* (bursts of cycles) so that the
// proposition traces expose the until/next temporal patterns the PSM
// generator mines. Inputs are held stable within an operation, as a real
// verification environment would drive a synchronous IP.

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "rtl/stimulus.hpp"

namespace psmgen::ip {

/// Base class: operations enqueue per-cycle input vectors into a buffer;
/// next() drains it and asks for the next operation when empty.
class OpStimulus : public rtl::Stimulus {
 public:
  rtl::PortValues next(std::size_t cycle) override;
  void restart() override;

 protected:
  explicit OpStimulus(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Appends at least one cycle worth of inputs to the buffer.
  virtual void emitNextOp() = 0;
  virtual void onRestart() {}

  void push(rtl::PortValues v) { queue_.push_back(std::move(v)); }

  common::Rng& rng() { return rng_; }
  std::size_t opIndex() const { return op_index_; }

 private:
  std::deque<rtl::PortValues> queue_;
  std::size_t op_index_ = 0;
  std::uint64_t seed_;
  common::Rng rng_;
};

enum class TestsetMode { Short, Long };

/// RAM: reset, idle gaps, sequential/random write and read bursts, and
/// same-address rewrite bursts (the data-dependent behaviour).
class RamTestbench final : public OpStimulus {
 public:
  RamTestbench(TestsetMode mode, std::uint64_t seed)
      : OpStimulus(seed), mode_(mode) {}

 protected:
  void emitNextOp() override;

 private:
  void pushOp(bool ce, bool we, bool oe, unsigned addr, std::uint64_t data,
              bool rst = false);
  TestsetMode mode_;
};

/// MultSum: accumulate bursts with random / constant / ramping operands,
/// interleaved with clears and zero-operand idle stretches.
class MultSumTestbench final : public OpStimulus {
 public:
  MultSumTestbench(TestsetMode mode, std::uint64_t seed)
      : OpStimulus(seed), mode_(mode) {}

 protected:
  void emitNextOp() override;

 private:
  void pushOp(std::uint64_t a, std::uint64_t b, bool clear);
  TestsetMode mode_;
};

/// AES: start pulses followed by the 10 busy rounds (inputs held), done,
/// idle gaps; alternates encryption and decryption, changing keys.
class AesTestbench final : public OpStimulus {
 public:
  AesTestbench(TestsetMode mode, std::uint64_t seed)
      : OpStimulus(seed), mode_(mode) {}

 protected:
  void emitNextOp() override;
  void onRestart() override;

 private:
  void pushCycles(std::size_t n, bool start, bool decrypt);
  TestsetMode mode_;
  common::BitVector key_{128};
  common::BitVector data_{128};
};

/// Camellia: key loads (krdy), data blocks (drdy) with the 21 busy cycles,
/// flushes, idle gaps; alternates encryption and decryption.
class CamelliaTestbench final : public OpStimulus {
 public:
  CamelliaTestbench(TestsetMode mode, std::uint64_t seed)
      : OpStimulus(seed), mode_(mode) {}

 protected:
  void emitNextOp() override;
  void onRestart() override;

 private:
  void pushCycles(std::size_t n, bool krdy, bool drdy, bool decrypt,
                  bool flush = false);
  TestsetMode mode_;
  common::BitVector key_{128};
  common::BitVector data_{128};
};

}  // namespace psmgen::ip
