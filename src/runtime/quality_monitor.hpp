#pragma once
// Prediction-quality drift detection over an OnlinePredictor stream.
//
// A trace-mined PSM is only trustworthy while the serving workload looks
// like the workload it was characterized on (paper Secs. V-VI): once the
// input distribution shifts, the wrong-state-prediction rate climbs, the
// simulator spends more instants desynchronized, and the emitted power
// wanders away from the per-state <mu, sigma> attributes the model
// stored. QualityMonitor watches exactly those signals *online* and
// folds them into a three-level drift status:
//
//   Ok       — every windowed signal below its degraded threshold
//   Degraded — some signal crossed its degraded threshold
//   Drifted  — some signal crossed its drifted threshold; `psmgen serve`
//              turns this into a 503 on /readyz so an orchestrator stops
//              routing traffic to a model that no longer fits its input
//
// Signals, all over a sliding window of the last `window_rows` rows
// (except the residual, which is an EWMA):
//   - windowed WSP percentage (wrong / resolved predictions),
//   - windowed lost percentage (instants desynchronized),
//   - windowed resync rate (recoveries per 1000 rows),
//   - power-residual EWMA: |estimate - mu_state| / sigma_state of the
//     state occupied at each synced instant — when a reference power
//     sample accompanies the row (predictRow(row, ref)), the reference
//     replaces the estimate and the signal measures true model error.
// Per-state occupancy of the window is exported as gauges so a scrape
// can see *where* the stream lives, not just how wrong it is.
//
// The monitor is strictly read-only over the predictor: it calls
// predictRow() and observes counters/session state afterwards, so the
// estimate stream is byte-identical with or without it (asserted by
// QualityMonitor.MonitorDoesNotChangeEstimates).
//
// Thread model: one feed thread calls predictRow()/predictStream();
// status() is a relaxed atomic read and window() takes a mutex, so the
// HTTP endpoint thread of `psmgen serve` can poll both concurrently.

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/psm.hpp"
#include "obs/http_server.hpp"
#include "runtime/online_predictor.hpp"

namespace psmgen::runtime {

enum class DriftStatus { Ok = 0, Degraded = 1, Drifted = 2 };

const char* driftStatusName(DriftStatus status);

struct QualityMonitorConfig {
  /// Sliding-window length in rows.
  std::size_t window_rows = 2048;
  /// Rows required in the window before the status may leave Ok: a cold
  /// stream that starts desynchronized must not flap to Drifted on its
  /// first handful of rows.
  std::size_t min_rows = 256;
  /// Resolved predictions required in the window before the WSP signal
  /// is judged — a ratio over a handful of predictions is noise, not a
  /// drift measurement.
  std::size_t min_predictions = 32;

  /// Windowed WSP percentage thresholds.
  double wsp_degraded_percent = 15.0;
  double wsp_drifted_percent = 35.0;
  /// Windowed lost-instant percentage thresholds.
  double lost_degraded_percent = 10.0;
  double lost_drifted_percent = 40.0;
  /// Windowed resyncs per 1000 rows.
  double resync_degraded_per_kilorow = 5.0;
  double resync_drifted_per_kilorow = 25.0;

  /// EWMA smoothing factor for the power residual |value - mu| / sigma.
  double residual_alpha = 0.02;
  double residual_degraded_z = 3.0;
  double residual_drifted_z = 6.0;

  /// Occupancy gauges are refreshed every this many rows (they loop over
  /// the per-state table; the scalar gauges update every row).
  std::size_t occupancy_update_rows = 64;
};

/// Windowed statistics, copied under the monitor's lock.
struct QualityWindow {
  std::size_t rows = 0;
  std::size_t predictions = 0;
  std::size_t wrong_predictions = 0;
  std::size_t resyncs = 0;
  std::size_t lost_instants = 0;
  double residual_ewma_z = 0.0;
  DriftStatus status = DriftStatus::Ok;

  double wspPercent() const {
    return predictions == 0
               ? 0.0
               : 100.0 * static_cast<double>(wrong_predictions) /
                     static_cast<double>(predictions);
  }
  double lostPercent() const {
    return rows == 0 ? 0.0
                     : 100.0 * static_cast<double>(lost_instants) /
                           static_cast<double>(rows);
  }
  double resyncsPerKilorow() const {
    return rows == 0 ? 0.0
                     : 1000.0 * static_cast<double>(resyncs) /
                           static_cast<double>(rows);
  }
};

class QualityMonitor {
 public:
  /// Wraps `predictor`; `psm` provides the per-state <mu, sigma> the
  /// residual signal compares against (the same Psm the predictor
  /// serves). Both must outlive the monitor.
  QualityMonitor(OnlinePredictor& predictor, const core::Psm& psm,
                 QualityMonitorConfig config = {});

  /// Predicts the next row (identical estimate to the bare predictor)
  /// and folds the row into the window. The overload taking `reference`
  /// uses the reference power sample for the residual signal.
  double predictRow(const std::vector<common::BitVector>& row);
  double predictRow(const std::vector<common::BitVector>& row,
                    double reference);

  /// Streams every row of `reader` through the monitored predictor —
  /// the monitored twin of OnlinePredictor::predictStream, with the same
  /// sink contract and end-of-stream gauges.
  PredictorStats predictStream(
      StreamingTraceReader& reader,
      const std::function<void(std::size_t, double)>& sink = {});

  /// Fresh stream: resets the predictor, the window and the status.
  void reset();

  /// Lock-free; safe from any thread (the serving endpoints poll it).
  DriftStatus status() const {
    return static_cast<DriftStatus>(status_.load(std::memory_order_relaxed));
  }

  QualityWindow window() const;

  /// Fraction of windowed rows spent in each state, indexed by StateId
  /// (desynchronized rows carry no state and are excluded).
  std::vector<double> stateOccupancy() const;

  const OnlinePredictor& predictor() const { return predictor_; }
  const QualityMonitorConfig& config() const { return config_; }

 private:
  struct RowRecord {
    core::StateId state = core::kNoState;
    std::uint32_t predictions = 0;
    std::uint32_t wrong = 0;
    std::uint32_t resyncs = 0;
    bool lost = false;
  };

  double predictRowImpl(const std::vector<common::BitVector>& row,
                        const double* reference);
  void evaluateLocked() REQUIRES(mutex_);
  void updateOccupancyGaugesLocked() REQUIRES(mutex_);

  OnlinePredictor& predictor_;
  const core::Psm* psm_;
  QualityMonitorConfig config_;

  // Lock table — mutex_ guards the sliding window (ring_/window_/
  // occupancy_/residual_primed_), written by the feed thread and copied
  // by window()/stateOccupancy() on the HTTP endpoint thread. status_
  // stays a relaxed atomic so /readyz never blocks on the feed.
  mutable common::Mutex mutex_;
  std::deque<RowRecord> ring_ GUARDED_BY(mutex_);
  QualityWindow window_ GUARDED_BY(mutex_);
  /// Windowed rows per StateId.
  std::vector<std::size_t> occupancy_ GUARDED_BY(mutex_);
  bool residual_primed_ GUARDED_BY(mutex_) = false;
  std::atomic<int> status_{static_cast<int>(DriftStatus::Ok)};
};

/// The `/readyz` contract shared by `psmgen serve` and the tests:
/// 200 with the status name while the monitor reports Ok/Degraded,
/// 503 "drifted" once it reports Drifted.
obs::HttpServer::Response readyzResponse(const QualityMonitor& monitor);

}  // namespace psmgen::runtime
