// Unit tests for the four benchmark IPs: functional correctness (AES
// against FIPS-197, Camellia against RFC 3713), RAM/MultSum behaviour,
// Table I interface characteristics, and testbench determinism.

#include <gtest/gtest.h>

#include "ip/aes.hpp"
#include "ip/camellia.hpp"
#include "ip/ip_factory.hpp"
#include "ip/multsum.hpp"
#include "ip/ram.hpp"
#include "rtl/simulator.hpp"

namespace psmgen::ip {
namespace {

using common::BitVector;

// ---------------------------------------------------------------------
// RAM
// ---------------------------------------------------------------------

rtl::PortValues ramOp(bool rst, bool ce, bool we, bool oe, unsigned addr,
                      std::uint64_t data) {
  return {BitVector(1, rst), BitVector(1, ce), BitVector(1, we),
          BitVector(1, oe), BitVector(8, addr), BitVector(32, data)};
}

TEST(RamIP, WriteReadBack) {
  RamIP ram;
  ram.reset();
  rtl::PortValues out;
  ram.tick(ramOp(false, true, true, false, 42, 0xDEADBEEF), out);
  ram.tick(ramOp(false, true, false, true, 42, 0), out);
  EXPECT_EQ(out[RamIP::kRdata].toUint64(), 0xDEADBEEFu);
  // Other addresses still zero.
  ram.tick(ramOp(false, true, false, true, 43, 0), out);
  EXPECT_EQ(out[RamIP::kRdata].toUint64(), 0u);
}

TEST(RamIP, ChipEnableGatesEverything) {
  RamIP ram;
  ram.reset();
  rtl::PortValues out;
  ram.tick(ramOp(false, false, true, true, 7, 0x123), out);
  EXPECT_TRUE(out[RamIP::kRdata].isZero());
  ram.tick(ramOp(false, true, false, true, 7, 0), out);
  EXPECT_TRUE(out[RamIP::kRdata].isZero());  // write was gated
}

TEST(RamIP, ResetClearsArray) {
  RamIP ram;
  ram.reset();
  rtl::PortValues out;
  ram.tick(ramOp(false, true, true, false, 3, 0xFFFFFFFF), out);
  ram.tick(ramOp(true, false, false, false, 0, 0), out);
  ram.tick(ramOp(false, true, false, true, 3, 0), out);
  EXPECT_TRUE(out[RamIP::kRdata].isZero());
}

TEST(RamIP, TableICharacteristics) {
  RamIP ram;
  EXPECT_EQ(ram.inputBits(), 44u);
  EXPECT_EQ(ram.outputBits(), 32u);
  EXPECT_EQ(ram.memoryElements(), 8192u);
}

// ---------------------------------------------------------------------
// MultSum
// ---------------------------------------------------------------------

rtl::PortValues macOp(std::uint64_t a, std::uint64_t b, bool clear) {
  return {BitVector(24, a), BitVector(24, b), BitVector(1, clear)};
}

TEST(MultSumIP, PipelinedAccumulation) {
  MultSumIP mac;
  mac.reset();
  rtl::PortValues out;
  // Three-stage pipeline: product of inputs at cycle t reaches the
  // accumulator at cycle t+2.
  mac.tick(macOp(3, 5, false), out);   // regs <- (3,5)
  mac.tick(macOp(7, 11, false), out);  // prod <- 15, regs <- (7,11)
  mac.tick(macOp(0, 0, false), out);   // acc <- 15, prod <- 77
  EXPECT_EQ(out[MultSumIP::kSum].toUint64(), 15u);
  mac.tick(macOp(0, 0, false), out);   // acc <- 92
  EXPECT_EQ(out[MultSumIP::kSum].toUint64(), 92u);
}

TEST(MultSumIP, ClearResetsAccumulator) {
  MultSumIP mac;
  mac.reset();
  rtl::PortValues out;
  mac.tick(macOp(100, 100, false), out);
  mac.tick(macOp(0, 0, false), out);
  mac.tick(macOp(0, 0, false), out);
  EXPECT_EQ(out[MultSumIP::kSum].toUint64(), 10000u);
  mac.tick(macOp(0, 0, true), out);
  EXPECT_EQ(out[MultSumIP::kSum].toUint64(), 0u);
}

TEST(MultSumIP, TableICharacteristics) {
  MultSumIP mac;
  EXPECT_EQ(mac.inputBits(), 49u);
  EXPECT_EQ(mac.outputBits(), 32u);
}

// ---------------------------------------------------------------------
// AES (FIPS-197)
// ---------------------------------------------------------------------

TEST(AesCore, Fips197AppendixCVector) {
  const aes::Block key = aes::toBlock(
      BitVector::fromHex("000102030405060708090a0b0c0d0e0f"));
  const aes::Block pt = aes::toBlock(
      BitVector::fromHex("00112233445566778899aabbccddeeff"));
  const aes::Block ct = aes::encryptBlock(pt, key);
  EXPECT_EQ(aes::fromBlock(ct).toHex(), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes::decryptBlock(ct, key), pt);
}

TEST(AesCore, KeyScheduleForwardBackward) {
  const aes::Block key = aes::toBlock(
      BitVector::fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
  aes::Block rk = key;
  for (int round = 1; round <= 10; ++round) rk = aes::nextRoundKey(rk, round);
  // FIPS-197 Appendix A.1 final round key.
  EXPECT_EQ(aes::fromBlock(rk).toHex(), "d014f9a8c9ee2589e13f0cc8b6630ca6");
  for (int round = 10; round >= 1; --round) rk = aes::prevRoundKey(rk, round);
  EXPECT_EQ(rk, key);
}

TEST(AesCore, MixColumnsInverts) {
  aes::Block s{};
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(i * 17 + 3);
  aes::Block t = s;
  aes::mixColumns(t);
  aes::invMixColumns(t);
  EXPECT_EQ(t, s);
  aes::shiftRows(t);
  aes::invShiftRows(t);
  EXPECT_EQ(t, s);
  aes::subBytes(t);
  aes::invSubBytes(t);
  EXPECT_EQ(t, s);
}

rtl::PortValues aesOp(bool start, bool decrypt, const BitVector& key,
                      const BitVector& data) {
  return {BitVector(1, 0), BitVector(1, 1), BitVector(1, start),
          BitVector(1, decrypt), key, data};
}

TEST(AesIP, DeviceEncryptsAndSignalsDone) {
  AesIP dev;
  dev.reset();
  const BitVector key = BitVector::fromHex("000102030405060708090a0b0c0d0e0f");
  const BitVector pt = BitVector::fromHex("00112233445566778899aabbccddeeff");
  rtl::PortValues out;
  dev.tick(aesOp(true, false, key, pt), out);
  for (int i = 0; i < 9; ++i) {
    dev.tick(aesOp(false, false, key, pt), out);
    EXPECT_FALSE(out[AesIP::kDone].bit(0));
  }
  dev.tick(aesOp(false, false, key, pt), out);
  EXPECT_TRUE(out[AesIP::kDone].bit(0));
  EXPECT_EQ(out[AesIP::kResult].toHex(), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesIP, DeviceDecryptInvertsEncrypt) {
  AesIP dev;
  dev.reset();
  const BitVector key = BitVector::fromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const BitVector pt = BitVector::fromHex("3243f6a8885a308d313198a2e0370734");
  rtl::PortValues out;
  dev.tick(aesOp(true, false, key, pt), out);
  for (int i = 0; i < 10; ++i) dev.tick(aesOp(false, false, key, pt), out);
  const BitVector ct = out[AesIP::kResult];
  EXPECT_EQ(ct.toHex(), "3925841d02dc09fbdc118597196a0b32");  // FIPS-197 B
  dev.tick(aesOp(true, true, key, ct), out);
  for (int i = 0; i < 10; ++i) dev.tick(aesOp(false, true, key, ct), out);
  EXPECT_TRUE(out[AesIP::kDone].bit(0));
  EXPECT_EQ(out[AesIP::kResult], pt);
}

TEST(AesIP, TableICharacteristics) {
  AesIP dev;
  EXPECT_EQ(dev.inputBits(), 260u);
  EXPECT_EQ(dev.outputBits(), 129u);
}

// ---------------------------------------------------------------------
// Camellia (RFC 3713)
// ---------------------------------------------------------------------

TEST(CamelliaCore, Rfc3713TestVector) {
  // K = P = 0123456789abcdeffedcba9876543210
  const camellia::KeySchedule ks =
      camellia::expandKey(0x0123456789abcdefull, 0xfedcba9876543210ull);
  std::uint64_t pt[2] = {0x0123456789abcdefull, 0xfedcba9876543210ull};
  std::uint64_t ct[2];
  camellia::encryptBlock(pt, ct, ks);
  EXPECT_EQ(ct[0], 0x6767313854966973ull);
  EXPECT_EQ(ct[1], 0x0857065648eabe43ull);
  std::uint64_t back[2];
  camellia::decryptBlock(ct, back, ks);
  EXPECT_EQ(back[0], pt[0]);
  EXPECT_EQ(back[1], pt[1]);
}

TEST(CamelliaCore, FlInvertsFl) {
  const std::uint64_t k = 0x0123456789abcdefull;
  const std::uint64_t x = 0xfedcba9876543210ull;
  EXPECT_EQ(camellia::FLinv(camellia::FL(x, k), k), x);
}

rtl::PortValues camOp(bool krdy, bool drdy, bool decrypt, const BitVector& key,
                      const BitVector& data, bool flush = false) {
  return {BitVector(1, 0),    BitVector(1, 1),      BitVector(1, krdy),
          BitVector(1, drdy), BitVector(1, decrypt), BitVector(1, flush),
          key,                data};
}

TEST(CamelliaIP, DeviceMatchesReferenceVector) {
  CamelliaIP dev;
  dev.reset();
  const BitVector key = BitVector::fromHex("0123456789abcdeffedcba9876543210");
  const BitVector pt = key;
  rtl::PortValues out;
  dev.tick(camOp(true, false, false, key, pt), out);   // load key
  dev.tick(camOp(false, true, false, key, pt), out);   // start block
  for (std::size_t i = 0; i < CamelliaIP::kLatency; ++i) {
    dev.tick(camOp(false, false, false, key, pt), out);
  }
  EXPECT_TRUE(out[CamelliaIP::kDone].bit(0));
  EXPECT_EQ(out[CamelliaIP::kDout].toHex(),
            "67673138549669730857065648eabe43");
}

TEST(CamelliaIP, DeviceDecryptInvertsEncrypt) {
  CamelliaIP dev;
  dev.reset();
  const BitVector key = BitVector::fromHex("aabbccddeeff00112233445566778899");
  const BitVector pt = BitVector::fromHex("00112233445566778899aabbccddeeff");
  rtl::PortValues out;
  dev.tick(camOp(true, false, false, key, pt), out);
  dev.tick(camOp(false, true, false, key, pt), out);
  for (std::size_t i = 0; i < CamelliaIP::kLatency; ++i) {
    dev.tick(camOp(false, false, false, key, pt), out);
  }
  const BitVector ct = out[CamelliaIP::kDout];
  dev.tick(camOp(false, true, true, key, ct), out);
  for (std::size_t i = 0; i < CamelliaIP::kLatency; ++i) {
    dev.tick(camOp(false, false, true, key, ct), out);
  }
  EXPECT_TRUE(out[CamelliaIP::kDone].bit(0));
  EXPECT_EQ(out[CamelliaIP::kDout], pt);
}

TEST(CamelliaIP, TableICharacteristics) {
  CamelliaIP dev;
  EXPECT_EQ(dev.inputBits(), 262u);
  EXPECT_EQ(dev.outputBits(), 129u);
}

// ---------------------------------------------------------------------
// Factory and testbenches
// ---------------------------------------------------------------------

TEST(IpFactory, BuildsAllDevicesAndPlans) {
  for (const IpKind kind : kAllIps) {
    auto dev = makeDevice(kind);
    EXPECT_EQ(dev->name(), ipName(kind));
    const auto short_plan = shortTSPlan(kind);
    EXPECT_GT(short_plan.size(), 1u);
    const auto long_plan = longTSPlan(kind, 100000);
    std::size_t total = 0;
    for (const auto& s : long_plan) total += s.cycles;
    EXPECT_EQ(total, 100000u);
  }
  // Paper's short-TS totals.
  auto total = [](const std::vector<TraceSpec>& plan) {
    std::size_t n = 0;
    for (const auto& s : plan) n += s.cycles;
    return n;
  };
  EXPECT_EQ(total(shortTSPlan(IpKind::Ram)), 34130u);
  EXPECT_EQ(total(shortTSPlan(IpKind::MultSum)), 12002u);
  EXPECT_EQ(total(shortTSPlan(IpKind::Aes)), 16504u);
  EXPECT_EQ(total(shortTSPlan(IpKind::Camellia)), 78004u);
}

TEST(Testbench, DeterministicAcrossRestart) {
  for (const IpKind kind : kAllIps) {
    auto tb = makeTestbench(kind, TestsetMode::Long, 123);
    std::vector<rtl::PortValues> first;
    for (int i = 0; i < 50; ++i) first.push_back(tb->next(i));
    tb->restart();
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(tb->next(i), first[static_cast<std::size_t>(i)])
          << ipName(kind) << " cycle " << i;
    }
  }
}

TEST(Testbench, DrivesDeviceWithoutError) {
  for (const IpKind kind : kAllIps) {
    for (const TestsetMode mode : {TestsetMode::Short, TestsetMode::Long}) {
      auto dev = makeDevice(kind);
      auto tb = makeTestbench(kind, mode, 7);
      rtl::Simulator sim(*dev);
      const trace::FunctionalTrace t = sim.run(*tb, 500);
      EXPECT_EQ(t.length(), 500u);
    }
  }
}

}  // namespace
}  // namespace psmgen::ip
