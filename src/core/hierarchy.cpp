#include "core/hierarchy.hpp"

#include <stdexcept>

namespace psmgen::core {

HierarchicalFlow::HierarchicalFlow(FlowConfig config) : config_(config) {}

void HierarchicalFlow::addTrainingTrace(
    const trace::FunctionalTrace& functional,
    const std::vector<trace::PowerTrace>& per_component,
    const std::vector<std::string>& names) {
  if (per_component.empty() || per_component.size() != names.size()) {
    throw std::invalid_argument(
        "HierarchicalFlow: component traces and names must align");
  }
  if (flows_.empty()) {
    names_ = names;
    for (std::size_t i = 0; i < names.size(); ++i) {
      flows_.push_back(std::make_unique<CharacterizationFlow>(config_));
    }
  } else if (names != names_) {
    throw std::invalid_argument(
        "HierarchicalFlow: partition layout changed between traces");
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i]->addTrainingTrace(functional, per_component[i]);
  }
}

std::vector<BuildReport> HierarchicalFlow::build() {
  if (flows_.empty()) {
    throw std::logic_error("HierarchicalFlow: build() without traces");
  }
  std::vector<BuildReport> reports;
  reports.reserve(flows_.size());
  for (auto& flow : flows_) reports.push_back(flow->build());
  return reports;
}

HierarchicalFlow::HierarchicalEstimate HierarchicalFlow::estimate(
    const trace::FunctionalTrace& trace) const {
  HierarchicalEstimate out;
  out.total.assign(trace.length(), 0.0);
  for (const auto& flow : flows_) {
    out.per_component.push_back(flow->estimate(trace));
    const auto& est = out.per_component.back().estimate;
    for (std::size_t t = 0; t < est.size(); ++t) out.total[t] += est[t];
  }
  return out;
}

HierarchicalFlow::Accuracy HierarchicalFlow::evaluate(
    const trace::FunctionalTrace& trace,
    const std::vector<trace::PowerTrace>& reference) const {
  if (reference.size() != flows_.size()) {
    throw std::invalid_argument("HierarchicalFlow: reference arity mismatch");
  }
  const HierarchicalEstimate est = estimate(trace);
  Accuracy acc;
  std::vector<double> total_ref(trace.length(), 0.0);
  double grand_total = 0.0;
  std::vector<double> component_total(flows_.size(), 0.0);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    std::vector<double> ref(reference[i].samples().begin(),
                            reference[i].samples().begin() +
                                static_cast<std::ptrdiff_t>(trace.length()));
    acc.component_mre.push_back(
        trace::meanRelativeError(est.per_component[i].estimate, ref));
    for (std::size_t t = 0; t < ref.size(); ++t) {
      total_ref[t] += ref[t];
      component_total[i] += ref[t];
      grand_total += ref[t];
    }
  }
  acc.total_mre = trace::meanRelativeError(est.total, total_ref);
  for (const double c : component_total) {
    acc.power_share.push_back(grand_total > 0.0 ? c / grand_total : 0.0);
  }
  return acc;
}

}  // namespace psmgen::core
