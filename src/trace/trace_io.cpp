#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"

namespace psmgen::trace {

namespace {
constexpr const char* kFunctionalHeader = "# psmgen functional trace v1";
constexpr const char* kPowerHeader = "# psmgen power trace v1";

VarKind parseKind(const std::string& s) {
  if (s == "in") return VarKind::Input;
  if (s == "out") return VarKind::Output;
  throw std::runtime_error("trace_io: bad variable kind: " + s);
}

std::string kindName(VarKind k) {
  return k == VarKind::Input ? "in" : "out";
}
}  // namespace

void writeFunctionalTrace(std::ostream& os, const FunctionalTrace& trace) {
  os << kFunctionalHeader << "\n";
  std::vector<std::string> cols;
  for (const auto& v : trace.variables().all()) {
    cols.push_back(v.name + ":" + kindName(v.kind) + ":" +
                   std::to_string(v.width));
  }
  os << common::join(cols, ",") << "\n";
  for (std::size_t t = 0; t < trace.length(); ++t) {
    std::vector<std::string> cells;
    for (const auto& value : trace.step(t)) cells.push_back(value.toHex());
    os << common::join(cells, ",") << "\n";
  }
}

FunctionalTrace readFunctionalTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || common::trim(line) != kFunctionalHeader) {
    throw std::runtime_error("trace_io: missing functional trace header");
  }
  if (!std::getline(is, line)) {
    throw std::runtime_error("trace_io: missing variable declaration line");
  }
  VariableSet vars;
  for (const auto& col : common::split(common::trim(line), ',')) {
    const auto fields = common::split(col, ':');
    if (fields.size() != 3) {
      throw std::runtime_error("trace_io: bad variable declaration: " + col);
    }
    vars.add(fields[0], static_cast<unsigned>(std::stoul(fields[2])),
             parseKind(fields[1]));
  }
  FunctionalTrace trace(vars);
  while (std::getline(is, line)) {
    const std::string t = common::trim(line);
    if (t.empty()) continue;
    const auto cells = common::split(t, ',');
    if (cells.size() != vars.size()) {
      throw std::runtime_error("trace_io: row arity mismatch");
    }
    std::vector<common::BitVector> row;
    row.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      row.push_back(common::BitVector::fromHex(cells[i], vars[i].width));
    }
    trace.append(std::move(row));
  }
  return trace;
}

void writePowerTrace(std::ostream& os, const PowerTrace& trace) {
  os << kPowerHeader << "\n";
  os.precision(17);
  os << trace.params().vdd << "," << trace.params().clock_hz << ","
     << trace.params().cap_per_bit << "\n";
  for (const double s : trace.samples()) os << s << "\n";
}

PowerTrace readPowerTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || common::trim(line) != kPowerHeader) {
    throw std::runtime_error("trace_io: missing power trace header");
  }
  if (!std::getline(is, line)) {
    throw std::runtime_error("trace_io: missing power parameter line");
  }
  const auto fields = common::split(common::trim(line), ',');
  if (fields.size() != 3) {
    throw std::runtime_error("trace_io: bad power parameter line");
  }
  PowerParams params;
  params.vdd = std::stod(fields[0]);
  params.clock_hz = std::stod(fields[1]);
  params.cap_per_bit = std::stod(fields[2]);
  PowerTrace trace(params);
  while (std::getline(is, line)) {
    const std::string t = common::trim(line);
    if (t.empty()) continue;
    trace.append(std::stod(t));
  }
  return trace;
}

void saveFunctionalTrace(const std::string& path, const FunctionalTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  writeFunctionalTrace(os, trace);
}

FunctionalTrace loadFunctionalTrace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return readFunctionalTrace(is);
}

void savePowerTrace(const std::string& path, const PowerTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  writePowerTrace(os, trace);
}

PowerTrace loadPowerTrace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return readPowerTrace(is);
}

}  // namespace psmgen::trace
