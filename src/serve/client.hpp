#pragma once
// Blocking client for the prediction service protocol.
//
// The reference consumer of serve/protocol.hpp: connects to a
// PredictionServer on loopback, negotiates Hello/HelloOk, streams row
// batches and reads back estimate batches in lockstep, and closes with
// Fin/FinAck. Used by the load-generator bench (bench/table6_serving),
// the server tests, and examples/serve_client; a non-C++ client only
// needs to reproduce the byte layout documented in protocol.hpp.
//
// An Error frame from the server surfaces as a thrown RemoteError
// carrying the wire code, so callers can distinguish a drain
// (ErrorCode::Draining) from a rejection (Busy, VersionMismatch, ...).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "serve/protocol.hpp"

namespace psmgen::serve {

/// An Error frame received from the server.
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(ErrorFrame error)
      : std::runtime_error(std::string(errorCodeName(error.code)) + ": " +
                           error.message),
        error_(std::move(error)) {}
  ErrorCode code() const { return error_.code; }
  const std::string& message() const { return error_.message; }

 private:
  ErrorFrame error_;
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`. Returns false on connect failure.
  bool connect(std::uint16_t port);

  /// Negotiates the session. `model_id` and `variables` may be empty to
  /// accept whatever the server serves. Throws RemoteError on rejection
  /// and ProtocolError / std::runtime_error on transport garbage.
  HelloReply hello(const std::string& model_id = "",
                   const std::string& variables = "",
                   std::uint32_t version = kProtocolVersion);

  /// Sends one Rows frame and waits for the matching Est frame.
  std::vector<EstRow> predict(
      const std::vector<std::vector<common::BitVector>>& rows);

  /// Sends raw pre-encoded bytes (tests use this to speak garbage).
  bool sendRaw(const std::string& bytes);

  /// Sends Fin and waits for the FinAck summary.
  FinSummary finish();

  /// Reads the next frame off the socket (blocking). Throws
  /// std::runtime_error when the server closes the connection first.
  Frame readFrame();

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  /// Reads until the decoder yields a frame; translates Error frames
  /// into RemoteError.
  Frame readExpected(FrameType type);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace psmgen::serve
