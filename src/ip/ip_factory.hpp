#pragma once
// Central registry of the paper's four benchmark IPs: device construction,
// testbench construction, the training-testset plans (how many traces of
// which length make up short-TS / long-TS), and the per-IP gate-level
// power calibration used by the PrimeTime-PX surrogate.

#include <memory>
#include <string>
#include <vector>

#include "power/gate_estimator.hpp"
#include "ip/testbench.hpp"
#include "rtl/device.hpp"

namespace psmgen::ip {

enum class IpKind { Ram, MultSum, Aes, Camellia };

constexpr IpKind kAllIps[] = {IpKind::Ram, IpKind::MultSum, IpKind::Aes,
                              IpKind::Camellia};

std::string ipName(IpKind kind);

std::unique_ptr<rtl::Device> makeDevice(IpKind kind);

std::unique_ptr<rtl::Stimulus> makeTestbench(IpKind kind, TestsetMode mode,
                                             std::uint64_t seed);

/// One training trace: a testbench seed and a cycle count.
struct TraceSpec {
  std::uint64_t seed = 0;
  std::size_t cycles = 0;
};

/// The short-TS plan mirrors the paper's Table II trace lengths (total
/// cycles: RAM 34130, MultSum 12002, AES 16504, Camellia 78004), split
/// over several independent traces as the methodology requires (one PSM
/// is generated per trace and the set is then joined).
std::vector<TraceSpec> shortTSPlan(IpKind kind);

/// The long-TS plan: 500000 total cycles per IP (Table II, below the
/// dashed line), split over independent traces.
std::vector<TraceSpec> longTSPlan(IpKind kind, std::size_t total_cycles = 500000);

/// Per-IP gate-level power calibration (the documented substitution for
/// Synopsys PrimeTime PX; see DESIGN.md Sec. 2):
///  - RAM: I/O (bitline/pad) capacitance dominates, making write power
///    strongly correlated with input Hamming distance, as in the paper.
///  - MultSum: default weighting; power correlates with PIs only across a
///    multi-cycle window (pipeline), so the one-cycle regression is
///    partially blind — slightly higher MRE, as in the paper.
///  - AES: uniform weighting; round activity is steady, so per-state
///    means are accurate.
///  - Camellia: the key-schedule/subkey pipeline and FL sub-blocks carry
///    heavy capacitance; their activity is poorly correlated with the
///    primary I/Os, reproducing the paper's high-MRE behaviour.
power::EstimatorConfig powerConfig(IpKind kind);

}  // namespace psmgen::ip
