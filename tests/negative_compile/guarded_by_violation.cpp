// Negative-compile fixture: a GUARDED_BY field touched without its
// mutex. Under Clang with -Werror=thread-safety this translation unit
// MUST fail to compile — the NegativeCompile.GuardedByViolationTrips
// ctest entry (WILL_FAIL) asserts exactly that, so a broken macro
// expansion in thread_annotations.hpp (or a CI job that stopped passing
// -Wthread-safety) cannot silently neuter the whole analysis.
//
// Under GCC the annotations are no-ops and this file compiles; the
// test is only registered for Clang.

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  // Violation: writes balance_ with mu_ not held.
  void deposit(int amount) { balance_ += amount; }

  int balance() const {
    psmgen::common::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable psmgen::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
