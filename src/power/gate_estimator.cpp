#include "power/gate_estimator.hpp"

#include "common/strings.hpp"

namespace psmgen::power {

GateLevelEstimator::GateLevelEstimator(rtl::Device& device,
                                       EstimatorConfig config)
    : device_(device), config_(std::move(config)),
      noise_rng_(config_.noise_seed) {
  const auto& regs = device_.registers();
  register_scale_.reserve(regs.size());
  glitchy_.reserve(regs.size());
  for (const rtl::Register* r : regs) {
    double scale = 1.0;
    for (const auto& [prefix, s] : config_.register_cap_scale) {
      if (common::startsWith(r->name(), prefix)) {
        scale = s;
        break;
      }
    }
    register_scale_.push_back(scale);
    total_cap_bits_ += scale * r->width();
    bool glitchy = false;
    for (const auto& prefix : config_.glitch_prefixes) {
      if (common::startsWith(r->name(), prefix)) {
        glitchy = true;
        break;
      }
    }
    glitchy_.push_back(glitchy ? 1 : 0);
  }
  total_cap_bits_ +=
      config_.io_cap_scale * (device_.inputBits() + device_.outputBits());
}

double GateLevelEstimator::registerSwitchedBits(const ActivitySample& sample,
                                                std::size_t i) const {
  double scale = register_scale_[i];
  if (config_.glitch_fraction > 0.0 && glitchy_[i] &&
      sample.register_toggles[i] > 0) {
    // Deterministic data-dependent glitch factor in [1-g, 1+g]: mix the
    // register's new value hash into a uniform deviate.
    std::uint64_t h = sample.register_value_hash[i];
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    const double u = 2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
    scale *= 1.0 + config_.glitch_fraction * u;
  }
  return scale * sample.register_toggles[i];
}

double GateLevelEstimator::cyclePower(const ActivitySample& sample) {
  double switched_bits = 0.0;
  for (std::size_t i = 0; i < sample.register_toggles.size(); ++i) {
    switched_bits += registerSwitchedBits(sample, i);
  }
  switched_bits +=
      config_.io_cap_scale * (sample.input_toggles + sample.output_toggles);
  switched_bits += config_.clock_tree_fraction * total_cap_bits_;

  const auto& p = config_.params;
  double watts = 0.5 * p.vdd * p.vdd * p.clock_hz * p.cap_per_bit * switched_bits;
  if (config_.noise_fraction > 0.0) {
    watts *= 1.0 + noise_rng_.gaussian(0.0, config_.noise_fraction);
    if (watts < 0.0) watts = 0.0;
  }
  return watts;
}

GateLevelEstimator::Result GateLevelEstimator::run(rtl::Stimulus& stimulus,
                                                   std::size_t cycles) {
  SwitchingActivityTracker tracker(device_);
  tracker.reset();
  trace::PowerTrace power(config_.params);
  power.reserve(cycles);
  rtl::Simulator sim(device_);
  auto observer = [&](std::size_t, const rtl::PortValues& in,
                      const rtl::PortValues& out) {
    power.append(cyclePower(tracker.sample(in, out)));
  };
  trace::FunctionalTrace functional = sim.run(stimulus, cycles, observer);
  return {std::move(functional), std::move(power)};
}

GateLevelEstimator::PartitionedResult GateLevelEstimator::runPartitioned(
    rtl::Stimulus& stimulus, std::size_t cycles,
    const std::vector<Partition>& partitions) {
  const auto& regs = device_.registers();
  const std::size_t rest = partitions.size();
  std::vector<std::size_t> owner(regs.size(), rest);
  for (std::size_t i = 0; i < regs.size(); ++i) {
    for (std::size_t p = 0; p < partitions.size() && owner[i] == rest; ++p) {
      for (const auto& prefix : partitions[p].register_prefixes) {
        if (common::startsWith(regs[i]->name(), prefix)) {
          owner[i] = p;
          break;
        }
      }
    }
  }

  PartitionedResult result;
  for (const auto& p : partitions) result.names.push_back(p.name);
  result.names.push_back("rest");
  result.power.assign(rest + 1, trace::PowerTrace(config_.params));
  for (auto& trace : result.power) trace.reserve(cycles);

  SwitchingActivityTracker tracker(device_);
  tracker.reset();
  rtl::Simulator sim(device_);
  const auto& cfg = config_;
  auto observer = [&](std::size_t, const rtl::PortValues& in,
                      const rtl::PortValues& out) {
    const ActivitySample sample = tracker.sample(in, out);
    std::vector<double> bits(rest + 1, 0.0);
    for (std::size_t i = 0; i < sample.register_toggles.size(); ++i) {
      bits[owner[i]] += registerSwitchedBits(sample, i);
    }
    // I/O pads and the clock tree belong to the implicit rest partition.
    bits[rest] +=
        cfg.io_cap_scale * (sample.input_toggles + sample.output_toggles);
    bits[rest] += cfg.clock_tree_fraction * total_cap_bits_;
    const auto& pp = cfg.params;
    for (std::size_t p = 0; p <= rest; ++p) {
      double watts =
          0.5 * pp.vdd * pp.vdd * pp.clock_hz * pp.cap_per_bit * bits[p];
      if (cfg.noise_fraction > 0.0) {
        watts *= 1.0 + noise_rng_.gaussian(0.0, cfg.noise_fraction);
        if (watts < 0.0) watts = 0.0;
      }
      result.power[p].append(watts);
    }
  };
  result.functional = sim.run(stimulus, cycles, observer);
  return result;
}

trace::PowerTrace GateLevelEstimator::runPowerOnly(rtl::Stimulus& stimulus,
                                                   std::size_t cycles) {
  SwitchingActivityTracker tracker(device_);
  tracker.reset();
  trace::PowerTrace power(config_.params);
  power.reserve(cycles);
  rtl::Simulator sim(device_);
  auto observer = [&](std::size_t, const rtl::PortValues& in,
                      const rtl::PortValues& out) {
    power.append(cyclePower(tracker.sample(in, out)));
  };
  sim.runSilent(stimulus, cycles, observer);
  return power;
}

}  // namespace psmgen::power
