// Table I reproduction: characteristics of the four benchmark IPs.
//
// Paper columns: source lines, PI bits, PO bits, gate-level synthesis
// time (Synopsys DesignCompiler) and memory elements of the netlist.
// Our substitution: "Lines" is the size of the behavioural model each IP
// reports, PI/PO widths come from the device port lists, the synthesis
// surrogate is the time to elaborate the gate-level power model and run a
// calibration simulation (the step that stands in for netlist-based power
// characterization), and memory elements are the bits of the explicit
// register file.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "core/report.hpp"
#include "rtl/simulator.hpp"

namespace {

struct PaperRow {
  std::size_t lines, pis, pos, mem;
  double syn_time;
};

PaperRow paperRow(psmgen::ip::IpKind kind) {
  using psmgen::ip::IpKind;
  switch (kind) {
    case IpKind::Ram: return {101, 44, 32, 8192, 140.2};
    case IpKind::MultSum: return {45, 49, 32, 225, 18.8};
    case IpKind::Aes: return {1089, 260, 129, 670, 42.6};
    case IpKind::Camellia: return {1676, 262, 129, 397, 75.2};
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psmgen;
  const std::size_t calib_cycles = bench::cyclesArg(argc, argv, 20000);
  bench::obsArgs(argc, argv);
  bench::ProfileScope profile(argc, argv);

  std::printf("== Table I: characteristics of benchmarks ==\n");
  std::printf("(calibration surrogate: %zu-cycle gate-level power "
              "characterization run)\n\n", calib_cycles);

  core::Table table({"IP", "Lines", "PIs", "POs", "Char. time (s)",
                     "Memory elements", "paper:Lines", "paper:PIs",
                     "paper:POs", "paper:Syn(s)", "paper:Mem"});
  for (const ip::IpKind kind : ip::kAllIps) {
    auto device = ip::makeDevice(kind);
    const auto t0 = std::chrono::steady_clock::now();
    power::GateLevelEstimator estimator(*device, ip::powerConfig(kind));
    auto tb = ip::makeTestbench(kind, ip::TestsetMode::Long, 0xC0FFEE);
    estimator.runPowerOnly(*tb, calib_cycles);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const PaperRow p = paperRow(kind);
    table.addRow({ip::ipName(kind), std::to_string(device->sourceLines()),
                  std::to_string(device->inputBits()),
                  std::to_string(device->outputBits()),
                  common::formatDouble(elapsed, 2),
                  std::to_string(device->memoryElements()),
                  std::to_string(p.lines), std::to_string(p.pis),
                  std::to_string(p.pos), common::formatDouble(p.syn_time, 1),
                  std::to_string(p.mem)});
  }
  table.print(std::cout);
  std::printf("\nShape check: PI/PO widths match the paper exactly; RAM has\n"
              "the dominant memory-element count; the cipher cores are the\n"
              "largest behavioural models.\n");
  return 0;
}
