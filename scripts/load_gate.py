#!/usr/bin/env python3
"""Serving-load gate over bench/table6_serving output.

The bench emits a one-entry JSON array::

    [{"ip": "RAM", "metrics": {"gauges": {"bench.serve.rows_per_second": N,
                                          "bench.serve.frame_p99_ms": M,
                                          "bench.serve.corrupted_frames": 0,
                                          ...}}}]

Three checks, against the committed baseline (BENCH_table6.json at the
repo root):

* correctness is absolute — ``bench.serve.corrupted_frames`` and
  ``bench.serve.errors`` must be exactly zero in every candidate run, no
  tolerance, no best-of;
* throughput (``bench.serve.rows_per_second``) must not fall more than
  ``--tolerance`` (default 40%) below the baseline, best-of across
  candidate runs to damp scheduler noise;
* tail latency (``bench.serve.frame_p99_ms``) must not rise more than
  ``1/(1-tolerance)`` above the baseline, best-of (minimum) across runs.

The latency tolerance is deliberately generous: p99 on a shared CI
runner is noisy, and the gate exists to catch a serialization point or
an accidental O(sessions) scan, not 10% jitter.

A fourth, optional check pins the flight recorder's cost: with
``--overhead-off OFF.json`` (a run with ``--flight-events 0``), the best
recorder-ON candidate throughput must stay within
``--overhead-tolerance`` (default 5%) of the recorder-OFF run —
always-on introspection that taxes serving more than that is a bug, not
a feature. This comparison is same-machine same-moment, so the
tolerance can be far tighter than the cross-machine baseline gate.

A fifth, optional check pins the sampling profiler's cost the same way:
with ``--profiler-on ON.json`` (a run with ``--profile-hz 97
--profile-out ...``), the profiled run's throughput must stay within
``--profiler-overhead-tolerance`` (default 2%) of the best unprofiled
candidate — a 97 Hz sampler is one bounded stack walk per ~10ms of CPU
time, and anything above 2% means the handler grew a hidden cost
(allocation, symbolization, a lock) that does not belong there.

Usage::

    scripts/load_gate.py --baseline BENCH_table6.json run1.json run2.json
    scripts/load_gate.py --baseline BENCH_table6.json --update run1.json
    scripts/load_gate.py --baseline BENCH_table6.json \
        --overhead-off off.json on1.json on2.json
    scripts/load_gate.py --baseline BENCH_table6.json \
        --profiler-on profiled.json plain1.json plain2.json

PSMGEN_LOAD_TOLERANCE / PSMGEN_FLIGHT_OVERHEAD_TOLERANCE /
PSMGEN_PROFILER_OVERHEAD_TOLERANCE (fractions) override the default
tolerances; the command-line flags win.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gate_common  # noqa: E402  (path-relative sibling import)

THROUGHPUT = "bench.serve.rows_per_second"
P99 = "bench.serve.frame_p99_ms"
ZERO_METRICS = ("bench.serve.corrupted_frames", "bench.serve.errors")
DEFAULT_TOLERANCE = 0.40
DEFAULT_OVERHEAD_TOLERANCE = 0.05
DEFAULT_PROFILER_OVERHEAD_TOLERANCE = 0.02


def load_gauges(path):
    """Returns the gauges dict of the single-entry table6 JSON file."""
    entries = gate_common.load_json_array(path, expect_len=1)
    gauges = entries[0]["metrics"]["gauges"]
    for metric in (THROUGHPUT, P99) + ZERO_METRICS:
        if metric not in gauges:
            raise ValueError(f"{path}: missing gauge {metric!r}")
    return gauges


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidates", nargs="+",
                        help="fresh table6_serving JSON output(s)")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (e.g. BENCH_table6.json)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional degradation (default "
                             f"{DEFAULT_TOLERANCE}, or PSMGEN_LOAD_TOLERANCE)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the best candidate "
                             "run instead of gating")
    parser.add_argument("--overhead-off", default=None,
                        help="recorder-off run (--flight-events 0); the best "
                             "candidate must stay within --overhead-tolerance "
                             "of its throughput")
    parser.add_argument("--overhead-tolerance", type=float, default=None,
                        help="allowed flight-recorder throughput cost "
                             f"(default {DEFAULT_OVERHEAD_TOLERANCE}, or "
                             "PSMGEN_FLIGHT_OVERHEAD_TOLERANCE)")
    parser.add_argument("--profiler-on", default=None,
                        help="profiled run (--profile-hz 97 --profile-out); "
                             "must stay within "
                             "--profiler-overhead-tolerance of the best "
                             "unprofiled candidate's throughput")
    parser.add_argument("--profiler-overhead-tolerance", type=float,
                        default=None,
                        help="allowed sampling-profiler throughput cost "
                             f"(default {DEFAULT_PROFILER_OVERHEAD_TOLERANCE}"
                             ", or PSMGEN_PROFILER_OVERHEAD_TOLERANCE)")
    args = parser.parse_args()

    tolerance = gate_common.require_fraction(
        parser, "tolerance",
        gate_common.env_float(args.tolerance, "PSMGEN_LOAD_TOLERANCE",
                              DEFAULT_TOLERANCE))

    # Correctness first, on every run: a single corrupted frame is a bug
    # whatever the throughput numbers say.
    dirty = False
    for path in args.candidates:
        gauges = load_gauges(path)
        for metric in ZERO_METRICS:
            if float(gauges[metric]) != 0.0:
                print(f"FAIL: {path}: {metric} = {gauges[metric]} "
                      "(must be exactly 0)")
                dirty = True
    if dirty:
        return 1

    if args.update:
        best_path = max(args.candidates,
                        key=lambda p: float(load_gauges(p)[THROUGHPUT]))
        gate_common.update_baseline(args.baseline, best_path)
        return 0

    base = load_gauges(args.baseline)
    best_rps = max(float(load_gauges(p)[THROUGHPUT])
                   for p in args.candidates)
    best_p99 = min(float(load_gauges(p)[P99]) for p in args.candidates)

    failed = False
    print(f"load gate: tolerance {tolerance:.0%}, "
          f"best of {len(args.candidates)} run(s)")

    base_rps = float(base[THROUGHPUT])
    rps_ratio = best_rps / base_rps
    rps_ok = rps_ratio >= 1.0 - tolerance
    failed = failed or not rps_ok
    print(f"{THROUGHPUT:<32} {base_rps:>14.0f} {best_rps:>14.0f} "
          f"{rps_ratio:>8.2f}  {gate_common.verdict(rps_ok)}")

    base_p99 = float(base[P99])
    p99_ratio = best_p99 / base_p99 if base_p99 > 0.0 else 1.0
    p99_ok = p99_ratio <= 1.0 / (1.0 - tolerance)
    failed = failed or not p99_ok
    print(f"{P99:<32} {base_p99:>14.2f} {best_p99:>14.2f} "
          f"{p99_ratio:>8.2f}  {gate_common.verdict(p99_ok)}")

    if args.overhead_off is not None:
        overhead_tolerance = gate_common.require_fraction(
            parser, "overhead tolerance",
            gate_common.env_float(args.overhead_tolerance,
                                  "PSMGEN_FLIGHT_OVERHEAD_TOLERANCE",
                                  DEFAULT_OVERHEAD_TOLERANCE))
        off_rps = float(load_gauges(args.overhead_off)[THROUGHPUT])
        on_ratio = best_rps / off_rps if off_rps > 0.0 else 1.0
        on_ok = on_ratio >= 1.0 - overhead_tolerance
        failed = failed or not on_ok
        print(f"{'flight recorder overhead':<32} {off_rps:>14.0f} "
              f"{best_rps:>14.0f} {on_ratio:>8.2f}  "
              f"{gate_common.verdict(on_ok)}")
        if not on_ok:
            print(f"FAIL: flight recorder costs more than "
                  f"{overhead_tolerance:.0%} of serving throughput "
                  f"(recorder-off {off_rps:.0f} rows/s, best recorder-on "
                  f"{best_rps:.0f} rows/s)")

    if args.profiler_on is not None:
        profiler_tolerance = gate_common.require_fraction(
            parser, "profiler overhead tolerance",
            gate_common.env_float(args.profiler_overhead_tolerance,
                                  "PSMGEN_PROFILER_OVERHEAD_TOLERANCE",
                                  DEFAULT_PROFILER_OVERHEAD_TOLERANCE))
        profiled = load_gauges(args.profiler_on)
        for metric in ZERO_METRICS:
            if float(profiled[metric]) != 0.0:
                print(f"FAIL: {args.profiler_on}: {metric} = "
                      f"{profiled[metric]} (must be exactly 0)")
                failed = True
        profiled_rps = float(profiled[THROUGHPUT])
        profiled_ratio = profiled_rps / best_rps if best_rps > 0.0 else 1.0
        profiled_ok = profiled_ratio >= 1.0 - profiler_tolerance
        failed = failed or not profiled_ok
        print(f"{'profiler overhead':<32} {best_rps:>14.0f} "
              f"{profiled_rps:>14.0f} {profiled_ratio:>8.2f}  "
              f"{gate_common.verdict(profiled_ok)}")
        if not profiled_ok:
            print(f"FAIL: 97 Hz sampling costs more than "
                  f"{profiler_tolerance:.0%} of serving throughput "
                  f"(unprofiled best {best_rps:.0f} rows/s, profiled "
                  f"{profiled_rps:.0f} rows/s)")

    return gate_common.finish(
        failed,
        f"serving load degraded beyond {tolerance:.0%} of the "
        f"committed baseline ({args.baseline}). If the change is "
        "intended, refresh the baseline with --update.")


if __name__ == "__main__":
    sys.exit(main())
