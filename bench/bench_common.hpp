#pragma once
// Shared support for the psmgen benchmark harness.
//
// Each bench binary reproduces one table of the paper's evaluation
// (Sec. VI). The harness prints our measured values next to the values
// reported in the paper; absolute numbers differ (our gate-level power
// estimator is a surrogate for PrimeTime PX and our machines differ) but
// the qualitative shape must hold — see EXPERIMENTS.md.

#include <cstddef>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "ip/ip_factory.hpp"
#include "obs/obs.hpp"
#include "power/gate_estimator.hpp"

namespace psmgen::bench {

/// One characterization run: flow trained on a testset, with timings.
struct FlowRun {
  std::unique_ptr<core::CharacterizationFlow> flow;
  core::BuildReport report;
  double px_seconds = 0.0;      ///< reference power-trace generation time
  std::size_t total_cycles = 0;
};

/// Trains a flow on the given testset plan (reference power traces come
/// from the gate-level surrogate).
FlowRun trainFlow(ip::IpKind kind, ip::TestsetMode mode,
                  const std::vector<ip::TraceSpec>& plan,
                  const core::FlowConfig& config = {});

/// Self-evaluation MRE: simulates the PSMs on every training trace and
/// compares against its reference power (the paper's Table II metric).
double trainingMre(const core::CharacterizationFlow& flow);

/// Evaluation of PSMs against an independently generated testset.
struct EvalResult {
  double mre = 0.0;
  double wsp_percent = 0.0;
  std::size_t wrong = 0;
  std::size_t predictions = 0;
  std::size_t unexpected = 0;
  std::size_t lost = 0;
};

EvalResult evaluateOn(const core::CharacterizationFlow& flow, ip::IpKind kind,
                      ip::TestsetMode mode, std::size_t cycles,
                      std::uint64_t seed);

/// Total cycles of a testset plan.
std::size_t planCycles(const std::vector<ip::TraceSpec>& plan);

/// Reads a "--cycles N" style override from argv; returns fallback if
/// absent or malformed.
std::size_t cyclesArg(int argc, char** argv, std::size_t fallback);

/// Reads a "--threads N" override from argv; returns fallback if absent
/// or malformed (0 = all hardware threads, 1 = sequential).
unsigned threadsArg(int argc, char** argv, unsigned fallback);

/// Parses the shared observability flags (--log-level LVL,
/// --metrics-out F, --trace-out F) and configures the process-global obs
/// layer, so every bench binary exposes the same surface as the CLI.
/// `force_metrics` enables the registry even without --metrics-out, for
/// benches whose stdout JSON embeds registry dumps (table4). Returns the
/// applied options; call obs::flushOutputs() before exiting.
obs::Options obsArgs(int argc, char** argv, bool force_metrics = false);

/// Whole-run CPU profiling for a bench binary: parses --profile-out F /
/// --profile-hz N (same contract as the CLI flags) and, when a path was
/// given, arms the sampling profiler for the scope's lifetime; the
/// destructor stops the capture and writes the psmgen.profile.v1 JSON
/// atomically. Declare one at the top of main(), after obsArgs():
///
///   bench::ProfileScope profile(argc, argv);
///
/// A scope without --profile-out is a no-op.
class ProfileScope {
 public:
  ProfileScope(int argc, char** argv);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  bool active() const { return active_; }

  /// Stops the capture and writes the dump now (idempotent; the
  /// destructor then does nothing). Call before measuring teardown-free
  /// throughput when the scope must not cover process exit.
  bool finish();

 private:
  std::string out_;
  bool active_ = false;
};

}  // namespace psmgen::bench
