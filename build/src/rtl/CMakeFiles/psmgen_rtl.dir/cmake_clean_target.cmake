file(REMOVE_RECURSE
  "libpsmgen_rtl.a"
)
