// Tests for the sampling CPU profiler (obs::Profiler).
//
// ITIMER_PROF ticks are delivered against consumed *CPU* time, so every
// capture here drives busy-spin threads and loops until the expected
// samples arrive (with a generous wall-clock deadline) instead of
// assuming a tick count — the suite must stay robust on a loaded
// single-core CI runner and under TSan's ~5-15x slowdown.

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_span.hpp"

namespace psmgen {

/// Spins until `stop` is raised, burning CPU so ITIMER_PROF ticks land.
/// The volatile sink keeps the loop from folding to nothing at -O2.
/// Deliberately *not* in the anonymous namespace and noinline: external
/// linkage puts it in the -rdynamic dynamic symbol table, so the
/// symbolization test can require this exact frame by name.
__attribute__((noinline)) void profilerTestBurnLoop(
    const std::atomic<bool>& stop) {
  volatile std::uint64_t sink = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (int i = 0; i < 4096; ++i) sink = sink + static_cast<unsigned>(i);
  }
}

namespace {

void burnCpu(const std::atomic<bool>& stop) { profilerTestBurnLoop(stop); }

/// Runs one capture over `threads` busy threads (each bound to the
/// given session id when non-zero) until `done` says the report
/// suffices or the deadline passes.
template <typename DonePredicate>
obs::ProfileReport captureUntil(const obs::ProfilerConfig& config,
                                int threads, std::uint64_t session,
                                DonePredicate done,
                                double deadline_seconds = 20.0) {
  obs::ProfileReport report;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(deadline_seconds);
  do {
    EXPECT_TRUE(obs::profiler().start(config));
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&stop, session] {
        if (session != 0) obs::FlightRecorder::setThreadSession(session);
        burnCpu(stop);
        obs::FlightRecorder::setThreadSession(0);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    for (std::thread& w : workers) w.join();
    report = obs::profiler().stop();
  } while (!done(report) && std::chrono::steady_clock::now() < deadline);
  return report;
}

TEST(Profiler, CapturesSamplesFromBusyThreads) {
  obs::ProfilerConfig config;
  config.hz = 500.0;
  const obs::ProfileReport report = captureUntil(
      config, /*threads=*/2, /*session=*/0,
      [](const obs::ProfileReport& r) { return r.samples >= 10; });
  EXPECT_GE(report.samples, 10u);
  EXPECT_FALSE(report.threads.empty());
  EXPECT_FALSE(report.stacks.empty());
  EXPECT_GT(report.duration_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.hz, 500.0);
  // The folded counts sum to at most the retained samples (stacks that
  // were pure trampoline frames may be dropped, never invented).
  std::uint64_t folded = 0;
  for (const auto& stack : report.stacks) {
    ASSERT_FALSE(stack.frames.empty());
    folded += stack.count;
  }
  EXPECT_LE(folded, report.samples);
  EXPECT_GT(folded, 0u);
}

TEST(Profiler, SymbolizesTheBusyLoop) {
  obs::ProfilerConfig config;
  config.hz = 500.0;
  const obs::ProfileReport report = captureUntil(
      config, /*threads=*/2, /*session=*/0,
      [](const obs::ProfileReport& r) {
        for (const auto& stack : r.stacks) {
          for (const std::string& frame : stack.frames) {
            if (frame.find("profilerTestBurnLoop") != std::string::npos) {
              return true;
            }
          }
        }
        return false;
      });
  // The burn loop has external linkage, so -rdynamic + dladdr must
  // resolve it to a demangled, parameter-stripped name.
  const std::string collapsed = obs::renderCollapsed(report);
  EXPECT_NE(collapsed.find("psmgen::profilerTestBurnLoop"),
            std::string::npos)
      << collapsed;
}

constexpr std::uint64_t kSession = 4242;

TEST(Profiler, AttributesSamplesToTheThreadSession) {
  obs::ProfilerConfig config;
  config.hz = 500.0;
  const obs::ProfileReport report = captureUntil(
      config, /*threads=*/2, kSession,
      [](const obs::ProfileReport& r) {
        const auto it = r.by_session.find(kSession);
        return it != r.by_session.end() && it->second >= 5;
      });
  const auto it = report.by_session.find(kSession);
  ASSERT_NE(it, report.by_session.end());
  EXPECT_GE(it->second, 5u);
}

TEST(Profiler, StartWhileRunningFailsAndLeavesTheCaptureAlive) {
  obs::ProfilerConfig config;
  config.hz = 50.0;
  ASSERT_TRUE(obs::profiler().start(config));
  EXPECT_TRUE(obs::profiler().running());
  EXPECT_FALSE(obs::profiler().start(config));
  EXPECT_TRUE(obs::profiler().running());  // the refusal did not stop it
  obs::profiler().stop();
  EXPECT_FALSE(obs::profiler().running());
  // stop() without a capture is a harmless no-op returning empty.
  const obs::ProfileReport empty = obs::profiler().stop();
  EXPECT_EQ(empty.samples, 0u);
}

TEST(Profiler, RingWraparoundCountsDroppedSamples) {
  obs::ProfilerConfig config;
  config.hz = 1000.0;
  config.ring_capacity = 1;  // clamped up to the floor of 16
  const obs::ProfileReport report = captureUntil(
      config, /*threads=*/1, /*session=*/0,
      [](const obs::ProfileReport& r) { return r.dropped > 0; });
  EXPECT_GT(report.dropped, 0u);
  // The ring retains at most its capacity per thread.
  EXPECT_LE(report.samples, 16u * report.threads.size());
}

TEST(Profiler, ThreadPoolExhaustionCountsOverflowedTicks) {
  obs::ProfilerConfig config;
  config.hz = 1000.0;
  config.max_threads = 1;
  const obs::ProfileReport report = captureUntil(
      config, /*threads=*/3, /*session=*/0,
      [](const obs::ProfileReport& r) {
        return r.overflowed > 0 && r.samples > 0;
      });
  EXPECT_GT(report.overflowed, 0u);
  EXPECT_EQ(report.threads.size(), 1u);
}

TEST(Profiler, ThreadInventoryIsReadableMidCapture) {
  obs::ProfilerConfig config;
  config.hz = 500.0;
  ASSERT_TRUE(obs::profiler().start(config));
  std::atomic<bool> stop{false};
  std::thread worker([&stop] { burnCpu(stop); });
  // Poll until the worker's ring claim shows up (or give up and let the
  // assertions below report what we got).
  std::vector<obs::ProfileReport::Thread> inventory;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    inventory = obs::profiler().threadInventory();
    if (!inventory.empty() && inventory.front().samples > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  worker.join();
  obs::profiler().stop();
  ASSERT_FALSE(inventory.empty());
  EXPECT_GT(inventory.front().samples, 0u);
  EXPECT_NE(inventory.front().tid, 0u);
}

TEST(Profiler, RendersJsonAndWritesAtomically) {
  obs::ProfilerConfig config;
  config.hz = 500.0;
  const obs::ProfileReport report = captureUntil(
      config, /*threads=*/1, /*session=*/7,
      [](const obs::ProfileReport& r) { return r.samples >= 5; });

  const std::string json = obs::renderProfileJson(report);
  EXPECT_NE(json.find("\"schema\": \"psmgen.profile.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\": "), std::string::npos);
  EXPECT_NE(json.find("\"by_session\": ["), std::string::npos);
  EXPECT_NE(json.find("\"session\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"stacks\": ["), std::string::npos);
  EXPECT_NE(json.find("\"lane_name\": "), std::string::npos);

  const std::string path = ::testing::TempDir() + "/psmgen_profile_test.json";
  ASSERT_TRUE(obs::writeProfile(path, report));
  std::ifstream dumped(path);
  ASSERT_TRUE(dumped.good());
  std::stringstream content;
  content << dumped.rdbuf();
  EXPECT_EQ(content.str(), json);
  // Atomic contract: no .tmp litter next to the dump.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Profiler, EmitsFlightEventsOnStartAndStop) {
  obs::flightRecorder().configure(256);
  obs::flightRecorder().setEnabled(true);
  obs::ProfilerConfig config;
  config.hz = 50.0;
  ASSERT_TRUE(obs::profiler().start(config));
  obs::profiler().stop();
  std::ostringstream os;
  obs::flightRecorder().writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"kind\": \"profile_start\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kind\": \"profile_stop\""), std::string::npos)
      << json;
  obs::flightRecorder().setEnabled(false);
}

// ------------------------------------------ signal-handler interplay

TEST(Profiler, FatalDumpHandlerMasksSigprofAndViceVersa) {
  ASSERT_TRUE(obs::installFatalSignalDump());
  for (const int fatal : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    struct sigaction action {};
    ASSERT_EQ(sigaction(fatal, nullptr, &action), 0);
    EXPECT_EQ(sigismember(&action.sa_mask, SIGPROF), 1)
        << "fatal signal " << fatal << " does not mask SIGPROF";
  }
  // The profiler's SIGPROF disposition reciprocates once installed.
  obs::ProfilerConfig config;
  config.hz = 50.0;
  ASSERT_TRUE(obs::profiler().start(config));
  struct sigaction prof {};
  ASSERT_EQ(sigaction(SIGPROF, nullptr, &prof), 0);
  for (const int fatal : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    EXPECT_EQ(sigismember(&prof.sa_mask, fatal), 1)
        << "SIGPROF handler does not mask fatal signal " << fatal;
  }
  obs::profiler().stop();
  EXPECT_FALSE(obs::inFatalSignalDump());
}

/// Stress: high-rate sampling while flight dumps fire from the same
/// process (the same try-lock dump path the fatal-signal handler
/// takes). The assertion is survival + a coherent report — the capture
/// keeps sampling through repeated dump traffic without deadlocking or
/// corrupting either side.
TEST(Profiler, SamplesWhileForcedFlightDumpsFire) {
  obs::flightRecorder().configure(1024);
  obs::flightRecorder().setEnabled(true);
  obs::flightRecorder().setDumpDir(::testing::TempDir());

  obs::ProfilerConfig config;
  config.hz = 997.0;
  ASSERT_TRUE(obs::profiler().start(config));

  std::atomic<bool> stop{false};
  std::vector<std::thread> burners;
  for (int t = 0; t < 2; ++t) {
    burners.emplace_back([&stop] {
      obs::FlightRecorder::setThreadSession(91);
      // Record while burning so the dumps have fresh events to race on.
      volatile std::uint64_t sink = 0;
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int j = 0; j < 2048; ++j) sink = sink + static_cast<unsigned>(j);
        obs::FlightEvent event;
        event.kind = static_cast<std::uint16_t>(obs::FlightEventKind::Mark);
        event.detail = static_cast<std::uint32_t>(++i);
        obs::flightRecorder().record(event);
      }
      obs::FlightRecorder::setThreadSession(0);
    });
  }
  // The forced dumps use the same try-lock path as the fatal-signal
  // handler (triggerDumpFromSignal), interleaved with profiling ticks.
  int dumps = 0;
  for (int round = 0; round < 20; ++round) {
    if (!obs::flightRecorder().triggerDumpFromSignal("forced_test").empty()) {
      ++dumps;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& b : burners) b.join();
  const obs::ProfileReport report = obs::profiler().stop();

  EXPECT_GT(dumps, 0);
  EXPECT_GT(report.samples, 0u);
  obs::flightRecorder().setEnabled(false);
  obs::flightRecorder().setDumpDir("");
}

}  // namespace
}  // namespace psmgen
