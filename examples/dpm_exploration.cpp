// Dynamic power management exploration (the use case motivating PSMs in
// the paper's introduction): once an IP has been characterized, its PSM
// replaces the gate-level power flow inside the virtual prototype, so a
// power manager can explore policies cheaply.
//
// This example characterizes the AES core, then explores how offered
// load translates into power by co-simulating the IP model with its PSM
// power monitor on the SystemC-lite kernel for three request arrival
// rates — the kind of what-if sweep a power manager designer runs.
//
// Run: ./build/examples/dpm_exploration

#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "core/flow.hpp"
#include "ip/ip_factory.hpp"
#include "power/gate_estimator.hpp"
#include "sysc/modules.hpp"

namespace {

using namespace psmgen;

/// Drives the AES core under an open workload: encryption requests
/// arrive randomly with probability `rate` per idle cycle and run
/// back-to-back when queued.
class ArrivalWorkload final : public rtl::Stimulus {
 public:
  ArrivalWorkload(double rate, std::uint64_t seed)
      : rate_(rate), seed_(seed), rng_(seed) {}

  rtl::PortValues next(std::size_t) override {
    if (busy_left_ > 0) {
      --busy_left_;
      return vec(false);
    }
    if (pending_ > 0) {
      --pending_;
      data_ = rng_.bits(128);
      busy_left_ = 11;  // 10 rounds + done
      return vec(true);
    }
    if (rng_.chance(rate_)) ++pending_;
    return vec(false);
  }

  void restart() override {
    rng_ = common::Rng(seed_);
    pending_ = 0;
    busy_left_ = 0;
    data_ = common::BitVector(128);
    key_ = common::BitVector::fromHex("000102030405060708090a0b0c0d0e0f");
  }

 private:
  rtl::PortValues vec(bool start) {
    return {common::BitVector(1, 0), common::BitVector(1, 1),
            common::BitVector(1, start), common::BitVector(1, 0), key_, data_};
  }

  double rate_;
  std::uint64_t seed_;
  common::Rng rng_;
  std::size_t pending_ = 0;
  std::size_t busy_left_ = 0;
  common::BitVector key_{128};
  common::BitVector data_{128};
};

}  // namespace

int main() {
  using namespace psmgen;
  constexpr std::size_t kCycles = 200000;

  // --- characterize AES once --------------------------------------------
  auto device = ip::makeDevice(ip::IpKind::Aes);
  power::GateLevelEstimator estimator(*device, ip::powerConfig(ip::IpKind::Aes));
  core::CharacterizationFlow flow;
  for (const ip::TraceSpec& spec : ip::shortTSPlan(ip::IpKind::Aes)) {
    auto tb = ip::makeTestbench(ip::IpKind::Aes, ip::TestsetMode::Short,
                                spec.seed);
    auto pair = estimator.run(*tb, spec.cycles);
    flow.addTrainingTrace(std::move(pair.functional), std::move(pair.power));
  }
  const core::BuildReport report = flow.build();
  std::printf("AES characterized: %zu states, %zu transitions\n\n",
              report.states, report.transitions);

  // --- explore DPM policies with the PSM only ----------------------------
  std::printf("arrival rate    mean power    energy (%zu cycles @100MHz)\n",
              kCycles);
  for (const double rate : {1.0 / 64.0, 1.0 / 16.0, 1.0 / 4.0}) {
    auto policy_device = ip::makeDevice(ip::IpKind::Aes);
    ArrivalWorkload workload(rate, 0xD1);
    sysc::Signal<sysc::PortRow> ports;
    sysc::Signal<double> power_w;
    sysc::IpModule ip_module(*policy_device, workload, ports);
    sysc::PsmModule psm_module(flow.simulator(), ports, power_w);
    sysc::Kernel kernel;
    kernel.add(ip_module);
    kernel.add(psm_module);
    kernel.add(ports);
    kernel.add(power_w);
    kernel.run(kCycles);
    const double mean_w =
        psm_module.totalEstimatedPower() /
        static_cast<double>(psm_module.cycles());
    const double energy_j =
        psm_module.totalEstimatedPower() / 100.0e6;  // 1 cycle = 10 ns
    std::printf("1/%-4.0f          %8.3e W   %8.3e J\n", 1.0 / rate, mean_w,
                energy_j);
  }
  std::printf(
      "\nAll three policies were evaluated without a single gate-level\n"
      "power simulation: this is the exploration loop PSMs enable.\n");
  return 0;
}
