// Raw-socket tests for the /debug introspection routes (serve/debug_http):
// exact status codes (200/400/404/405), HEAD behaviour, bounded response
// sizes, the live-session table reflecting every open session, and the
// automatic flight-recorder dump on a malformed frame.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "ip/ip_factory.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/profiler.hpp"
#include "power/gate_estimator.hpp"
#include "serialize/psm_artifact.hpp"
#include "serve/client.hpp"
#include "serve/debug_http.hpp"
#include "serve/server.hpp"

namespace psmgen {
namespace {

using common::BitVector;

/// Sends one raw request to 127.0.0.1:`port` and returns the full
/// response (read-until-EOF framing; the server closes every connection).
std::string rawRequest(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& target,
                const std::string& method = "GET") {
  return rawRequest(port, method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

int statusOf(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string bodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

std::size_t countOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// One small RAM characterization shared by the whole suite: just enough
/// model for sessions to stream rows through.
struct ServedModel {
  serialize::PsmModel model;
  std::vector<std::vector<BitVector>> rows;
};

ServedModel buildServedModel() {
  core::CharacterizationFlow flow;
  auto device = ip::makeDevice(ip::IpKind::Ram);
  power::GateLevelEstimator est(*device, ip::powerConfig(ip::IpKind::Ram));
  for (const auto& spec : ip::shortTSPlan(ip::IpKind::Ram)) {
    auto tb =
        ip::makeTestbench(ip::IpKind::Ram, ip::TestsetMode::Short, spec.seed);
    auto pair = est.run(*tb, 1500);
    flow.addTrainingTrace(std::move(pair.functional), std::move(pair.power));
  }
  flow.build();
  std::ostringstream os(std::ios::binary);
  serialize::writePsmModel(os, flow.psm(), flow.domain());
  std::istringstream is(os.str(), std::ios::binary);
  serialize::PsmModel model = serialize::readPsmModel(is);

  auto tb = ip::makeTestbench(ip::IpKind::Ram, ip::TestsetMode::Long, 0xBEEF);
  const trace::FunctionalTrace eval = est.run(*tb, 600).functional;
  std::vector<std::vector<BitVector>> rows;
  rows.reserve(eval.length());
  for (std::size_t i = 0; i < eval.length(); ++i) {
    rows.push_back(eval.step(i));
  }
  return {std::move(model), std::move(rows)};
}

ServedModel& servedModel() {
  static ServedModel shared = buildServedModel();
  return shared;
}

constexpr char kBuildJson[] = "{\"name\": \"psmgen-test\"}\n";

/// A PredictionServer plus the debug routes on an HTTP server, both on
/// ephemeral loopback ports, with the global flight recorder armed.
class DebugHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::flightRecorder().clear();
    obs::flightRecorder().configure(512);
    obs::flightRecorder().setEnabled(true);

    serve::ServerConfig config;
    config.port = 0;
    config.model_id = "ram";
    prediction_ = std::make_unique<serve::PredictionServer>(
        servedModel().model, config);
    ASSERT_TRUE(prediction_->listen());
    prediction_->start();

    serve::registerDebugRoutes(http_, prediction_.get(), kBuildJson);
    ASSERT_TRUE(http_.listen(0));
    http_.start();
  }

  void TearDown() override {
    http_.stop();
    prediction_->stop();
    obs::flightRecorder().setEnabled(false);
    obs::flightRecorder().setDumpDir("");
    obs::flightRecorder().clear();
  }

  std::unique_ptr<serve::PredictionServer> prediction_;
  obs::HttpServer http_;
};

TEST_F(DebugHttpTest, DebugBuildServesTheJsonVerbatim) {
  const std::string response = get(http_.port(), "/debug/build");
  EXPECT_EQ(statusOf(response), 200);
  EXPECT_EQ(bodyOf(response), kBuildJson);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
}

TEST_F(DebugHttpTest, SessionsTableReflectsEveryLiveSession) {
  ServedModel& shared = servedModel();
  constexpr int kClients = 3;
  std::vector<serve::Client> clients(kClients);
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i].connect(prediction_->port()));
    clients[i].hello("ram");
    clients[i].predict({shared.rows[0], shared.rows[1]});
  }

  const std::string response = get(http_.port(), "/debug/sessions");
  ASSERT_EQ(statusOf(response), 200);
  const std::string body = bodyOf(response);
  EXPECT_NE(body.find("\"psmgen.sessions.v1\""), std::string::npos);
  EXPECT_NE(body.find("\"active\": 3"), std::string::npos) << body;
  EXPECT_NE(body.find("\"truncated\": false"), std::string::npos);
  for (int id = 1; id <= kClients; ++id) {
    EXPECT_NE(body.find("\"id\": " + std::to_string(id)), std::string::npos)
        << "session " << id << " missing from\n" << body;
  }
  EXPECT_EQ(countOccurrences(body, "\"peer\""), 3u);
  EXPECT_NE(body.find("\"state\": \"streaming\""), std::string::npos);
  EXPECT_NE(body.find("\"drift\": \"ok\""), std::string::npos);

  for (auto& client : clients) client.finish();
  // Closed sessions leave the registry; poll briefly for the last thread.
  for (int i = 0; i < 100; ++i) {
    if (prediction_->sessions().size() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::string after = bodyOf(get(http_.port(), "/debug/sessions"));
  EXPECT_NE(after.find("\"active\": 0"), std::string::npos) << after;
  EXPECT_NE(after.find("\"total_opened\": 3"), std::string::npos) << after;
}

TEST_F(DebugHttpTest, EventsRouteServesAllAndFiltersBySession) {
  ServedModel& shared = servedModel();
  serve::Client client;
  ASSERT_TRUE(client.connect(prediction_->port()));
  client.hello("ram");
  client.predict({shared.rows[0], shared.rows[1], shared.rows[2]});
  client.finish();

  const std::string all = get(http_.port(), "/debug/events");
  ASSERT_EQ(statusOf(all), 200);
  EXPECT_NE(bodyOf(all).find("\"psmgen.events.v1\""), std::string::npos);
  EXPECT_NE(bodyOf(all).find("\"kind\": \"hello\""), std::string::npos);
  EXPECT_NE(bodyOf(all).find("\"kind\": \"rows\""), std::string::npos);
  EXPECT_NE(bodyOf(all).find("\"kind\": \"fin\""), std::string::npos);

  // Session 1 finished but its history stays queryable from the rings.
  const std::string one = get(http_.port(), "/debug/events?session=1");
  ASSERT_EQ(statusOf(one), 200);
  EXPECT_GE(countOccurrences(bodyOf(one), "\"session\": 1,"), 3u);
  EXPECT_EQ(countOccurrences(bodyOf(one), "\"session\": 2,"), 0u);
}

TEST_F(DebugHttpTest, EventsRouteValidatesTheSessionParameter) {
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/events?session=999")), 404);
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/events?session=abc")), 400);
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/events?session=0")), 400);
}

TEST_F(DebugHttpTest, MethodsAndHeadAreHandledExactly) {
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/sessions", "POST")), 405);
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/events", "PUT")), 405);
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/nope")), 404);

  const std::string head = get(http_.port(), "/debug/sessions", "HEAD");
  EXPECT_EQ(statusOf(head), 200);
  EXPECT_EQ(bodyOf(head), "") << "HEAD must not carry a body";
  EXPECT_NE(head.find("Content-Length: "), std::string::npos);
}

TEST_F(DebugHttpTest, EventListIsBoundedHoweverMuchHistoryExists) {
  // Fill well past the render cap; the route must clamp to the newest
  // kMaxEventsRendered events and the body must stay bounded.
  for (int i = 0; i < 2000; ++i) {
    obs::FlightEvent event;
    event.session = 1;
    event.kind = static_cast<std::uint16_t>(obs::FlightEventKind::Mark);
    obs::flightRecorder().record(event);
  }
  const std::string response = get(http_.port(), "/debug/events");
  ASSERT_EQ(statusOf(response), 200);
  const std::string body = bodyOf(response);
  EXPECT_LE(countOccurrences(body, "{\"id\": "), serve::kMaxEventsRendered);
  EXPECT_LT(body.size(), 128u * 1024u);
}

TEST_F(DebugHttpTest, MalformedFrameTriggersAFlightDumpWithTheSession) {
  const std::string dir =
      ::testing::TempDir() + "psmgen_debug_http_dumps";
  std::filesystem::remove_all(dir);
  ::mkdir(dir.c_str(), 0755);
  obs::flightRecorder().setDumpDir(dir);

  serve::Client client;
  ASSERT_TRUE(client.connect(prediction_->port()));
  client.hello("ram");
  ASSERT_TRUE(client.sendRaw("\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF"));
  const serve::Frame frame = client.readFrame();
  ASSERT_EQ(frame.type, serve::FrameType::Error);

  // The session thread writes the dump right after sending the error
  // frame; poll briefly for the file.
  std::string dump_path;
  for (int i = 0; i < 200 && dump_path.empty(); ++i) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("psmgen-flight-protocol_error-", 0) == 0) {
        dump_path = entry.path().string();
      }
    }
    if (dump_path.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_FALSE(dump_path.empty()) << "no protocol_error dump in " << dir;

  std::ifstream in(dump_path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"psmgen.events.v1\""), std::string::npos);
  EXPECT_NE(content.str().find("\"reason\": \"protocol_error\""),
            std::string::npos);
  // The dump is filtered to the offending session and holds its history.
  EXPECT_NE(content.str().find("\"kind\": \"hello\""), std::string::npos);
  EXPECT_NE(content.str().find("\"kind\": \"protocol_error\""),
            std::string::npos);
  EXPECT_GE(countOccurrences(content.str(), "\"session\": 1,"), 2u);
}

TEST_F(DebugHttpTest, LimitParameterCapsEventsAndSessions) {
  for (int i = 0; i < 50; ++i) {
    obs::FlightEvent event;
    event.session = 1;
    event.kind = static_cast<std::uint16_t>(obs::FlightEventKind::Mark);
    obs::flightRecorder().record(event);
  }
  const std::string limited = get(http_.port(), "/debug/events?limit=5");
  ASSERT_EQ(statusOf(limited), 200);
  EXPECT_EQ(countOccurrences(bodyOf(limited), "{\"id\": "), 5u);
  // The cap composes with the session filter.
  const std::string filtered =
      get(http_.port(), "/debug/events?session=1&limit=3");
  ASSERT_EQ(statusOf(filtered), 200);
  EXPECT_EQ(countOccurrences(bodyOf(filtered), "{\"id\": "), 3u);
  // /debug/sessions accepts the same parameter (one live session here,
  // so limit=1 still renders it and limit stays validated).
  serve::Client client;
  ASSERT_TRUE(client.connect(prediction_->port()));
  client.hello("ram");
  const std::string sessions = get(http_.port(), "/debug/sessions?limit=1");
  ASSERT_EQ(statusOf(sessions), 200);
  EXPECT_EQ(countOccurrences(bodyOf(sessions), "{\"id\": "), 1u);
  client.finish();
}

TEST_F(DebugHttpTest, LimitParameterRejectsGarbage) {
  for (const char* target :
       {"/debug/events?limit=0", "/debug/events?limit=257",
        "/debug/events?limit=-3", "/debug/events?limit=abc",
        "/debug/events?limit=5x", "/debug/events?limit=",
        "/debug/sessions?limit=0", "/debug/sessions?limit=banana",
        "/debug/sessions?limit=99999999999999999999"}) {
    const std::string response = get(http_.port(), target);
    EXPECT_EQ(statusOf(response), 400) << target;
    EXPECT_NE(bodyOf(response).find("limit"), std::string::npos) << target;
  }
  // The cap value itself is accepted on both routes.
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/events?limit=256")), 200);
  EXPECT_EQ(statusOf(get(http_.port(), "/debug/sessions?limit=256")), 200);
}

// --------------------------------------------------- /debug/pprof routes

TEST_F(DebugHttpTest, PprofProfileCapturesCollapsedStacksMidLoad) {
  // Keep a session busy so the capture has cycles to attribute.
  ServedModel& shared = servedModel();
  std::atomic<bool> stop{false};
  std::thread load([&] {
    serve::Client client;
    if (!client.connect(prediction_->port())) return;
    client.hello("ram");
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      client.predict({shared.rows[i % shared.rows.size()]});
      ++i;
    }
    client.finish();
  });

  const std::string response =
      get(http_.port(), "/debug/pprof/profile?seconds=1&hz=500");
  stop.store(true);
  load.join();
  ASSERT_EQ(statusOf(response), 200);
  const std::string body = bodyOf(response);
  // Either real collapsed stacks (`frames... count`) or the explicit
  // no-CPU-consumed marker; under load on any real machine, the former.
  EXPECT_FALSE(body.empty());
  if (body.rfind("# no samples", 0) == std::string::npos) {
    EXPECT_NE(body.find(' '), std::string::npos);
    EXPECT_NE(body.find('\n'), std::string::npos);
  }
}

TEST_F(DebugHttpTest, PprofProfileValidatesItsParameters) {
  for (const char* target :
       {"/debug/pprof/profile?seconds=0", "/debug/pprof/profile?seconds=31",
        "/debug/pprof/profile?seconds=abc", "/debug/pprof/profile?seconds=-1",
        "/debug/pprof/profile?hz=0", "/debug/pprof/profile?hz=1001",
        "/debug/pprof/profile?hz=x", "/debug/pprof/profile?seconds=1&hz=nan"}) {
    EXPECT_EQ(statusOf(get(http_.port(), target)), 400) << target;
  }
}

TEST_F(DebugHttpTest, PprofProfileAnswers503WhileACaptureOwnsTheTimer) {
  // A whole-run capture (the CLI's --profile-out path) owns the one
  // SIGPROF timer; the on-demand route must refuse, not hijack it.
  ASSERT_TRUE(obs::profiler().start(obs::ProfilerConfig{}));
  const std::string response =
      get(http_.port(), "/debug/pprof/profile?seconds=1");
  EXPECT_EQ(statusOf(response), 503);
  EXPECT_NE(bodyOf(response).find("busy"), std::string::npos);
  obs::profiler().stop();
}

TEST_F(DebugHttpTest, PprofThreadsListsTheLastCaptureWithLaneNames) {
  // Produce a capture so the inventory is non-empty, spinning the
  // current (main) thread — lane 0 — until at least one tick lands.
  obs::ProfilerConfig config;
  config.hz = 500.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool sampled = false;
  while (!sampled && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(obs::profiler().start(config));
    volatile std::uint64_t sink = 0;
    const auto spin_until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    while (std::chrono::steady_clock::now() < spin_until) {
      for (int i = 0; i < 4096; ++i) sink = sink + static_cast<unsigned>(i);
    }
    sampled = obs::profiler().stop().samples > 0;
  }
  ASSERT_TRUE(sampled);
  const std::string response = get(http_.port(), "/debug/pprof/threads");
  ASSERT_EQ(statusOf(response), 200);
  const std::string body = bodyOf(response);
  EXPECT_NE(body.find("\"psmgen.profile_threads.v1\""), std::string::npos);
  EXPECT_NE(body.find("\"capturing\": false"), std::string::npos);
  EXPECT_NE(body.find("\"lane_name\": \"main\""), std::string::npos) << body;
}

TEST(DebugHttpStdio, SessionsRouteExplainsItselfWithoutARegistry) {
  obs::HttpServer http;
  serve::registerDebugRoutes(http, nullptr, kBuildJson);
  ASSERT_TRUE(http.listen(0));
  http.start();
  const std::string response = get(http.port(), "/debug/sessions");
  EXPECT_EQ(statusOf(response), 404);
  EXPECT_NE(bodyOf(response).find("stdio"), std::string::npos);
  EXPECT_EQ(statusOf(get(http.port(), "/debug/build")), 200);
  http.stop();
}

}  // namespace
}  // namespace psmgen
